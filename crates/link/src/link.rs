//! Bit-exact propagation of data streams through an SRLR link, with
//! per-segment residual-charge (inter-symbol interference) tracking.
//!
//! Topology (paper Fig. 2): the pulse modulator drives segment 0; SRLR
//! stage `i` receives from segment `i` and relaunches into segment `i+1`;
//! the last stage's full-swing output feeds the demodulator directly, so
//! an `n`-stage link spans `n` segments (`n` mm at the paper's 1 mm
//! insertion length).
//!
//! Between pulses each segment is actively drained by its driver's NMOS
//! pull-down, but a weak pull-down (or an over-driven wire) leaves residue
//! that accumulates over runs of `1`s — the paper's `11110` failure mode.
//! [`SrlrLink::transmit`] tracks that baseline per segment: arriving
//! pulses ride on it (which can rescue a marginal `1`), and a baseline
//! that alone crosses a stage's sense threshold fires the self-resetting
//! repeater spuriously (turning a transmitted `0` into a received `1`).

use crate::ber::BerReport;
use crate::metrics::LinkMetrics;
use crate::prbs::Prbs;
use srlr_core::{Demodulator, PulseState, SrlrChain, SrlrDesign};
use srlr_tech::{GlobalVariation, MismatchSampler, Technology};
use srlr_units::{DataRate, Energy, TimeInterval, Voltage};

/// Link-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Number of SRLR stages (= link length in segments).
    pub stages: usize,
    /// Signaling data rate.
    pub data_rate: DataRate,
    /// Narrowest pulse the demodulator latch captures.
    pub demod_min_width: TimeInterval,
}

impl LinkConfig {
    /// The paper's test chip: 10 stages (10 mm) at 4.1 Gb/s.
    pub fn paper_default() -> Self {
        Self {
            stages: 10,
            data_rate: DataRate::from_gigabits_per_second(4.1),
            demod_min_width: TimeInterval::from_picoseconds(20.0),
        }
    }

    /// Returns a copy at a different data rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    #[must_use]
    pub fn with_data_rate(&self, data_rate: DataRate) -> Self {
        assert!(data_rate.value() > 0.0, "data rate must be positive");
        Self { data_rate, ..*self }
    }
}

/// The result of transmitting a bit sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmitOutcome {
    /// The bits the demodulator recovered.
    pub received: Vec<bool>,
    /// Total dynamic energy spent by the modulator and every stage.
    pub energy: Energy,
    /// Worst residual baseline observed on any segment (ISI headroom
    /// diagnostic).
    pub max_baseline: Voltage,
}

/// Mutable per-transmission state carried across bit slots: the residual
/// ISI baseline on each segment plus the running energy/ISI diagnostics.
struct SlotState {
    /// `baseline[i]`: residue on segment i (input of stage i) at the
    /// start of the current bit slot.
    baseline: Vec<Voltage>,
    energy: Energy,
    max_baseline: Voltage,
}

impl SlotState {
    fn new(stages: usize) -> Self {
        Self {
            baseline: vec![Voltage::zero(); stages],
            energy: Energy::zero(),
            max_baseline: Voltage::zero(),
        }
    }
}

/// A resolved SRLR link on one die.
#[derive(Debug, Clone, PartialEq)]
pub struct SrlrLink {
    chain: SrlrChain,
    config: LinkConfig,
    demod: Demodulator,
}

impl SrlrLink {
    /// Builds a link for `design` on a die with the given global variation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero stages.
    pub fn on_die(
        tech: &Technology,
        design: &SrlrDesign,
        config: LinkConfig,
        var: &GlobalVariation,
    ) -> Self {
        let chain = design.instantiate(tech, var, config.stages);
        Self::from_chain(chain, config)
    }

    /// Builds a link with per-stage local mismatch drawn from `mc` —
    /// either a sequential [`srlr_tech::MonteCarlo`] stream or a
    /// per-trial [`srlr_tech::DieSampler`].
    pub fn on_die_with_mismatch<M: MismatchSampler>(
        tech: &Technology,
        design: &SrlrDesign,
        config: LinkConfig,
        var: &GlobalVariation,
        mc: &mut M,
    ) -> Self {
        let chain = design.instantiate_with_mismatch(tech, var, config.stages, mc);
        Self::from_chain(chain, config)
    }

    /// Wraps an already-instantiated chain.
    ///
    /// # Panics
    ///
    /// Panics if the chain has no stages ([`SrlrChain`] construction
    /// guarantees at least one).
    pub fn from_chain(chain: SrlrChain, config: LinkConfig) -> Self {
        let last = chain.stages().last();
        // srlr-lint: allow(no-panic, reason = "documented panic: SrlrChain::instantiate asserts stages >= 1, see # Panics")
        let sense = last.expect("chain is non-empty").sense_threshold;
        Self {
            chain,
            config,
            demod: Demodulator::new(config.demod_min_width, sense),
        }
    }

    /// The paper's test chip: the proposed design on a typical die,
    /// 10 stages at 4.1 Gb/s.
    pub fn paper_test_chip(tech: &Technology) -> Self {
        Self::on_die(
            tech,
            &SrlrDesign::paper_proposed(tech),
            LinkConfig::paper_default(),
            &GlobalVariation::nominal(),
        )
    }

    /// The resolved chain.
    pub fn chain(&self) -> &SrlrChain {
        &self.chain
    }

    /// The link configuration.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Transmits `bits` with per-stage Gaussian timing jitter of the
    /// given sigma on every repeated pulse width (supply noise, coupling
    /// and clockless-retiming uncertainty lumped). This is the margin the
    /// silicon's rated 4.1 Gb/s holds against the stress-pattern cliff.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn transmit_with_jitter(
        &self,
        bits: &[bool],
        sigma: TimeInterval,
        seed: u64,
    ) -> TransmitOutcome {
        assert!(sigma.seconds() >= 0.0, "jitter sigma must be non-negative");
        let mut noise = srlr_tech::montecarlo::GaussianRng::new(seed);
        self.transmit_inner(bits, |w| {
            let jittered = w.seconds() + noise.sample() * sigma.seconds();
            TimeInterval::from_seconds(jittered.max(0.0))
        })
    }

    /// Transmits `bits` at the configured data rate and returns what the
    /// demodulator recovered, with energy and ISI diagnostics.
    pub fn transmit(&self, bits: &[bool]) -> TransmitOutcome {
        self.transmit_inner(bits, |w| w)
    }

    /// Whether the link reproduces `bits` exactly at the configured rate,
    /// short-circuiting on the first corrupted bit.
    ///
    /// This is the Monte Carlo hot path: a failing die usually corrupts a
    /// bit early in the stress pattern, so bailing out immediately is much
    /// cheaper than materialising and comparing the whole received vector.
    pub fn transmits_cleanly(&self, bits: &[bool]) -> bool {
        let mut state = SlotState::new(self.chain.stages().len());
        let mut jitter = |w| w;
        bits.iter()
            .all(|&bit| self.step_slot(&mut state, bit, &mut jitter) == bit)
    }

    fn transmit_inner(
        &self,
        bits: &[bool],
        mut jitter: impl FnMut(TimeInterval) -> TimeInterval,
    ) -> TransmitOutcome {
        let mut state = SlotState::new(self.chain.stages().len());
        let received = bits
            .iter()
            .map(|&bit| self.step_slot(&mut state, bit, &mut jitter))
            .collect();
        TransmitOutcome {
            received,
            energy: state.energy,
            max_baseline: state.max_baseline,
        }
    }

    /// Advances the link by one bit slot: launches (or not) at the PM,
    /// propagates through every stage updating the per-segment ISI
    /// baselines, and returns the demodulator's decision for this slot.
    fn step_slot(
        &self,
        state: &mut SlotState,
        bit: bool,
        jitter: &mut dyn FnMut(TimeInterval) -> TimeInterval,
    ) -> bool {
        let stages = self.chain.stages();
        let n = stages.len();
        let t_bit = self.config.data_rate.bit_period();

        // The PM's launch into segment 0; PM hardware mirrors stage 0.
        let mut launched: Option<TimeInterval> = if bit {
            state.energy += stages[0].pulse_energy(self.chain.launch_width());
            Some(jitter(self.chain.launch_width()))
        } else {
            None
        };
        // `launcher` owns the segment the pulse is currently on.
        let mut launcher = &stages[0];

        for (i, stage) in stages.iter().enumerate() {
            let b = state.baseline[i];
            // Peak this slot on segment i, and its end-of-slot residue.
            let (peak, residue) = match launched {
                Some(w) => {
                    let headroom =
                        (1.0 - b.volts() / launcher.drive_level.volts().max(1e-9)).clamp(0.0, 1.0);
                    let peak = b + launcher.delivered_swing(w) * headroom;
                    let gap = (t_bit - w).max(TimeInterval::zero());
                    let decay = (-gap.seconds() / launcher.discharge_tau().seconds()).exp();
                    (peak, peak * decay)
                }
                None => {
                    let decay = (-t_bit.seconds() / launcher.discharge_tau().seconds()).exp();
                    (b, b * decay)
                }
            };
            state.baseline[i] = residue;
            state.max_baseline = state.max_baseline.max(residue);

            // Stage i detection: a real pulse rides on the baseline; a
            // baseline alone above threshold self-fires the repeater.
            let outcome = match launched {
                Some(w) => stage.process(PulseState::new(w, peak)),
                None if peak >= stage.sense_threshold => {
                    stage.process(PulseState::new(t_bit, peak))
                }
                None => srlr_core::pulse::StageOutcome {
                    output: PulseState::dead(),
                    launched_drive: Voltage::zero(),
                    energy: Energy::zero(),
                },
            };
            if i + 1 < n {
                state.energy += outcome.energy;
            } else if outcome.output.is_valid() {
                // The last stage drives the DM directly: charge only
                // its internal nodes, not another wire segment.
                state.energy += stage.internal_energy_per_pulse;
            }
            launched = if outcome.output.is_valid() {
                Some(jitter(outcome.output.width))
            } else {
                None
            };
            launcher = stage;
        }

        // DM decision on the last stage's (full-swing) output pulse.
        match launched {
            Some(w) => w >= self.demod.min_width,
            None => false,
        }
    }

    /// Conservatively certifies that this die transmits **every** bit
    /// pattern cleanly at the configured rate: the zero-baseline chain
    /// propagates a `1` with margin, and no reachable ISI residue can
    /// fire a repeater spuriously (see the `certify` module's bounds).
    ///
    /// `true` is a proof (with a 1e-9 relative guard band over exact
    /// f64 evaluation); `false` only means "unproven" — the batched
    /// Monte Carlo engine falls back to exact simulation then.
    pub fn robustly_clean(&self) -> bool {
        crate::certify::robustly_clean(self)
    }

    /// Convenience BER smoke test: transmits `bits` PRBS-7 bits seeded with
    /// `seed` and reports the error count.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn ber_quick_check(&self, bits: usize, seed: u32) -> BerReport {
        assert!(bits > 0, "need at least one bit");
        let mut gen = Prbs::prbs7_with_seed(seed % 127 + 1);
        let tx = gen.take_bits(bits);
        let outcome = self.transmit(&tx);
        let errors = tx
            .iter()
            .zip(&outcome.received)
            .filter(|(a, b)| a != b)
            .count();
        BerReport {
            bits,
            errors,
            energy: outcome.energy,
            data_rate: self.config.data_rate,
        }
    }

    /// Headline metrics of this link at its configured rate, assuming
    /// PRBS traffic (ones density ½).
    pub fn metrics(&self) -> LinkMetrics {
        LinkMetrics::measure(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_tech::MonteCarlo;

    fn link() -> SrlrLink {
        SrlrLink::paper_test_chip(&Technology::soi45())
    }

    #[test]
    fn all_patterns_survive_nominally() {
        let l = link();
        let patterns: [&[bool]; 5] = [
            &[true; 16],
            &[false; 16],
            &[true, false, true, false, true, false, true, false],
            // The paper's worst case: 11110 repeated.
            &[true, true, true, true, false, true, true, true, true, false],
            &[false, false, true, false, false, false, true, true],
        ];
        for p in patterns {
            let out = l.transmit(p);
            assert_eq!(out.received, p, "pattern corrupted: {p:?}");
        }
    }

    #[test]
    fn prbs_is_error_free_nominally() {
        let report = link().ber_quick_check(20_000, 7);
        assert_eq!(report.errors, 0, "nominal BER check failed: {report:?}");
    }

    #[test]
    fn zeros_cost_no_wire_energy() {
        let l = link();
        let zeros = l.transmit(&[false; 32]);
        assert_eq!(zeros.energy, Energy::zero());
        let ones = l.transmit(&[true; 32]);
        assert!(ones.energy.femtojoules() > 0.0);
    }

    #[test]
    fn energy_tracks_ones_count() {
        let l = link();
        let few = l.transmit(&[true, false, false, false, false, false, false, false]);
        let many = l.transmit(&[true; 8]);
        assert!(many.energy > few.energy * 6.0);
    }

    #[test]
    fn baseline_stays_below_sense_threshold_nominally() {
        let l = link();
        let out = l.transmit(&[true; 64]);
        let sense = l.chain().stages()[0].sense_threshold;
        assert!(
            out.max_baseline < sense,
            "nominal ISI residue {} reaches the sense threshold {}",
            out.max_baseline,
            sense
        );
    }

    #[test]
    fn higher_rate_raises_baseline() {
        let tech = Technology::soi45();
        let design = srlr_core::SrlrDesign::paper_proposed(&tech);
        let slow = SrlrLink::on_die(
            &tech,
            &design,
            LinkConfig::paper_default().with_data_rate(DataRate::from_gigabits_per_second(2.0)),
            &GlobalVariation::nominal(),
        );
        let fast = SrlrLink::on_die(
            &tech,
            &design,
            LinkConfig::paper_default().with_data_rate(DataRate::from_gigabits_per_second(4.1)),
            &GlobalVariation::nominal(),
        );
        let pattern = [true; 32];
        assert!(fast.transmit(&pattern).max_baseline > slow.transmit(&pattern).max_baseline);
    }

    #[test]
    fn absurdly_fast_rate_fails() {
        let tech = Technology::soi45();
        let design = srlr_core::SrlrDesign::paper_proposed(&tech);
        let l = SrlrLink::on_die(
            &tech,
            &design,
            LinkConfig::paper_default().with_data_rate(DataRate::from_gigabits_per_second(12.0)),
            &GlobalVariation::nominal(),
        );
        let report = l.ber_quick_check(2_000, 3);
        assert!(
            report.errors > 0,
            "12 Gb/s should be beyond the link's limit"
        );
    }

    #[test]
    fn fixed_bias_die_fails_at_slow_corner() {
        let tech = Technology::soi45();
        let ss = srlr_tech::ProcessCorner::SlowSlow.variation(&tech);
        let design = srlr_core::SrlrDesign::paper_proposed(&tech).with_adaptive_swing(false);
        let l = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &ss);
        let out = l.transmit(&[true; 8]);
        assert!(out.received.iter().all(|&b| !b), "slow die should drop 1s");
    }

    #[test]
    fn paper_rate_survives_realistic_jitter() {
        // 6 ps sigma of width jitter per stage leaves the 4.1 Gb/s link
        // clean — the rated point sits inside the jitter margin.
        let l = link();
        let bits: Vec<bool> = [true, true, true, true, false, true, false, false].repeat(64);
        let out = l.transmit_with_jitter(&bits, TimeInterval::from_picoseconds(6.0), 17);
        assert_eq!(out.received, bits);
    }

    #[test]
    fn jitter_erodes_the_rate_cliff() {
        // At a rate near the nominal stress cliff, jitter produces errors
        // that the jitter-free model would miss — the physical reason for
        // rating the link below the cliff.
        let tech = Technology::soi45();
        let design = srlr_core::SrlrDesign::paper_proposed(&tech);
        let config =
            LinkConfig::paper_default().with_data_rate(DataRate::from_gigabits_per_second(5.8));
        let l = SrlrLink::on_die(&tech, &design, config, &GlobalVariation::nominal());
        let bits: Vec<bool> = [true, true, true, true, false].repeat(100);
        assert_eq!(l.transmit(&bits).received, bits, "clean model passes");
        let mut failures = 0;
        for seed in 0..8 {
            let out = l.transmit_with_jitter(&bits, TimeInterval::from_picoseconds(10.0), seed);
            if out.received != bits {
                failures += 1;
            }
        }
        assert!(failures > 0, "jitter should break the cliff-edge rate");
    }

    #[test]
    fn zero_jitter_matches_clean_transmit() {
        let l = link();
        let bits = [true, false, true, true, false, false, true, true];
        let clean = l.transmit(&bits);
        let jittered = l.transmit_with_jitter(&bits, TimeInterval::zero(), 5);
        assert_eq!(clean, jittered);
    }

    #[test]
    fn mismatch_link_is_deterministic_per_seed() {
        let tech = Technology::soi45();
        let design = srlr_core::SrlrDesign::paper_proposed(&tech);
        let build = |seed| {
            let mut mc = MonteCarlo::new(&tech, seed);
            let var = mc.sample_die();
            SrlrLink::on_die_with_mismatch(
                &tech,
                &design,
                LinkConfig::paper_default(),
                &var,
                &mut mc,
            )
        };
        assert_eq!(build(5), build(5));
        assert_ne!(build(5), build(6));
    }
}
