//! BER-versus-rate "bathtub": the margin curve between the operating
//! point and the failure cliff, measured with timing jitter enabled.
//!
//! The silicon's 4.1 Gb/s rating holds BER < 1e-9; pushing the rate eats
//! the jitter margin until errors appear. Sweeping the rate with the
//! jittered transmitter produces the right-hand wall of the classic
//! bathtub curve and shows how much slope sits between "rated" and
//! "broken".

use crate::engine;
use crate::link::{LinkConfig, SrlrLink};
use crate::prbs::Prbs;
use srlr_core::{DieBatch, SrlrDesign};
use srlr_tech::montecarlo::GaussianRng;
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::{DataRate, TimeInterval};

/// One rate point of the bathtub.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BathtubPoint {
    /// Data rate.
    pub rate: DataRate,
    /// Bit errors observed across all seeds.
    pub errors: usize,
    /// Total bits transmitted across all seeds.
    pub bits: usize,
}

impl BathtubPoint {
    /// Observed bit-error rate.
    ///
    /// # Panics
    ///
    /// Panics if no bits were transmitted.
    // srlr-lint: allow(raw-f64-api, reason = "bit-error ratio is a dimensionless probability")
    pub fn ber(&self) -> f64 {
        assert!(self.bits > 0, "empty bathtub point");
        self.errors as f64 / self.bits as f64
    }
}

/// Sweeps data rate with per-stage width jitter, accumulating errors over
/// `seeds` independent noise streams of `bits_per_seed` PRBS bits each.
///
/// # Panics
///
/// Panics if any count is zero or the jitter is negative.
pub fn rate_bathtub(
    tech: &Technology,
    design: &SrlrDesign,
    rates: &[DataRate],
    jitter_sigma: TimeInterval,
    bits_per_seed: usize,
    seeds: u64,
) -> Vec<BathtubPoint> {
    rate_bathtub_with_threads(
        tech,
        design,
        rates,
        jitter_sigma,
        bits_per_seed,
        seeds,
        None,
    )
}

/// [`rate_bathtub`] with an explicit worker-thread count (`None` defers
/// to `SRLR_THREADS` / the machine). Every `(rate, seed)` pair is an
/// independent jittered transmission, so the sweep is flattened into one
/// parallel workload; the curve is identical at every thread count.
///
/// # Panics
///
/// Panics if any count is zero or the jitter is negative.
pub fn rate_bathtub_with_threads(
    tech: &Technology,
    design: &SrlrDesign,
    rates: &[DataRate],
    jitter_sigma: TimeInterval,
    bits_per_seed: usize,
    seeds: u64,
    threads: Option<usize>,
) -> Vec<BathtubPoint> {
    assert!(!rates.is_empty(), "need at least one rate");
    assert!(bits_per_seed > 0 && seeds > 0, "need a bit budget");
    assert!(jitter_sigma.seconds() >= 0.0, "jitter must be non-negative");
    let nominal = GlobalVariation::nominal();
    // Link elaboration is invariant across seeds: build each rate's link
    // once up front instead of inside the flattened hot loop.
    let links: Vec<SrlrLink> = rates
        .iter()
        .map(|&rate| {
            let config = LinkConfig::paper_default().with_data_rate(rate);
            SrlrLink::on_die(tech, design, config, &nominal)
        })
        .collect();

    // Cells are batched: every (rate, seed) lane advances in lockstep
    // through a DieBatch with its own PRBS stimulus and its own Gaussian
    // noise stream (seeded exactly as the scalar per-cell transmit), so
    // the curve is bit-identical to one `transmit_with_jitter` per cell.
    // No certificate screening here — it only proves the *jitter-free*
    // link clean — and no early exit: a bathtub counts every error.
    const BATCH_WIDTH: usize = 32;
    let n_seeds = seeds as usize;
    let n_threads = engine::resolve_threads(threads);
    let total = rates.len() * n_seeds;
    let n_batches = total.div_ceil(BATCH_WIDTH);
    let sigma_s = jitter_sigma.seconds();
    let stages = links[0].chain().stages().len();
    let chunks = engine::par_map_indexed(n_batches, n_threads, |b| {
        let first = b * BATCH_WIDTH;
        let count = BATCH_WIDTH.min(total - first);
        let mut batch = DieBatch::new(stages, count);
        let mut txs: Vec<Vec<bool>> = Vec::with_capacity(count);
        let mut noise: Vec<GaussianRng> = Vec::with_capacity(count);
        for lane in 0..count {
            let i = first + lane;
            let (point, seed) = (i / n_seeds, (i % n_seeds) as u64);
            let link = &links[point];
            batch.load_lane(
                lane,
                link.chain(),
                link.config().data_rate.bit_period(),
                link.config().demod_min_width,
            );
            // srlr-lint: allow(lossy-cast, reason = "seed % 126 + 1 is at most 126, well within u32")
            txs.push(Prbs::prbs7_with_seed((seed % 126 + 1) as u32).take_bits(bits_per_seed));
            noise.push(GaussianRng::new(seed));
        }
        let mut jitter = |lane: usize, w: TimeInterval| {
            let jittered = w.seconds() + noise[lane].sample() * sigma_s;
            TimeInterval::from_seconds(jittered.max(0.0))
        };
        let mut tx = vec![false; count];
        let mut rx = vec![false; count];
        let mut errors = vec![0usize; count];
        for slot in 0..bits_per_seed {
            for (t, lane_tx) in tx.iter_mut().zip(&txs) {
                *t = lane_tx[slot];
            }
            batch.advance_slot_jittered(&tx, &mut rx, &mut jitter);
            for ((e, &r), &t) in errors.iter_mut().zip(&rx).zip(&tx) {
                if r != t {
                    *e += 1;
                }
            }
        }
        errors
            .into_iter()
            .map(|e| (e, bits_per_seed))
            .collect::<Vec<(usize, usize)>>()
    });
    let cells = chunks.concat();
    rates
        .iter()
        .zip(cells.chunks(n_seeds))
        .map(|(&rate, chunk)| BathtubPoint {
            rate,
            errors: chunk.iter().map(|&(e, _)| e).sum(),
            bits: chunk.iter().map(|&(_, b)| b).sum(),
        })
        .collect()
}

/// Renders the bathtub as an ASCII row per rate.
pub fn render(points: &[BathtubPoint]) -> String {
    let mut out = String::new();
    for p in points {
        let bar = if p.errors == 0 {
            "clean".to_owned()
        } else {
            format!(
                "BER {:.1e} {}",
                p.ber(),
                "#".repeat((p.ber().log10() + 7.0).max(1.0) as usize)
            )
        };
        out.push_str(&format!(
            "{:>6.1} Gb/s  {}\n",
            p.rate.gigabits_per_second(),
            bar
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<BathtubPoint> {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let rates: Vec<DataRate> = [3.5, 4.1, 5.0, 5.6, 6.2, 7.0]
            .iter()
            .map(|&g| DataRate::from_gigabits_per_second(g))
            .collect();
        rate_bathtub(
            &tech,
            &design,
            &rates,
            TimeInterval::from_picoseconds(3.0),
            500,
            6,
        )
    }

    #[test]
    fn rated_point_is_clean_under_jitter() {
        let c = curve();
        assert_eq!(c[0].errors, 0, "3.5 Gb/s must be clean");
        assert_eq!(c[1].errors, 0, "4.1 Gb/s must be clean");
    }

    #[test]
    fn the_wall_appears_before_the_jitter_free_cliff() {
        // Jitter-free cliff is ~6 Gb/s; with 3 ps of jitter errors must
        // appear at or below 6.2 Gb/s.
        let c = curve();
        let first_bad = c.iter().find(|p| p.errors > 0);
        let first_bad = first_bad.expect("the sweep must reach the wall");
        assert!(
            first_bad.rate.gigabits_per_second() <= 6.3,
            "wall at {first_bad:?}"
        );
    }

    #[test]
    fn error_rate_grows_up_the_wall() {
        let c = curve();
        let bers: Vec<f64> = c.iter().map(BathtubPoint::ber).collect();
        // Beyond the first error the curve must not fall back to zero.
        if let Some(first) = bers.iter().position(|&b| b > 0.0) {
            for (i, &b) in bers.iter().enumerate().skip(first + 1) {
                assert!(b > 0.0, "BER fell back to zero at index {i}");
            }
        }
    }

    #[test]
    fn parallel_bathtub_matches_serial() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let rates: Vec<DataRate> = [4.1, 5.6, 6.2]
            .iter()
            .map(|&g| DataRate::from_gigabits_per_second(g))
            .collect();
        let sigma = TimeInterval::from_picoseconds(3.0);
        let serial = rate_bathtub_with_threads(&tech, &design, &rates, sigma, 300, 4, Some(1));
        for threads in [2usize, 8] {
            assert_eq!(
                serial,
                rate_bathtub_with_threads(&tech, &design, &rates, sigma, 300, 4, Some(threads)),
                "threads={threads} diverged from the serial bathtub"
            );
        }
    }

    #[test]
    fn batched_bathtub_matches_per_cell_scalar_transmission() {
        // Every point must equal the straightforward per-cell jittered
        // transmit it replaced, including the per-seed noise streams.
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let rates: Vec<DataRate> = [4.1, 5.6, 6.2]
            .iter()
            .map(|&g| DataRate::from_gigabits_per_second(g))
            .collect();
        let sigma = TimeInterval::from_picoseconds(3.0);
        let (bits_per_seed, seeds) = (200usize, 5u64);
        let batched =
            rate_bathtub_with_threads(&tech, &design, &rates, sigma, bits_per_seed, seeds, Some(1));
        let nominal = GlobalVariation::nominal();
        for (point, &rate) in rates.iter().enumerate() {
            let config = LinkConfig::paper_default().with_data_rate(rate);
            let link = SrlrLink::on_die(&tech, &design, config, &nominal);
            let mut errors = 0usize;
            for seed in 0..seeds {
                let tx = Prbs::prbs7_with_seed((seed % 126 + 1) as u32).take_bits(bits_per_seed);
                let out = link.transmit_with_jitter(&tx, sigma, seed);
                errors += tx.iter().zip(&out.received).filter(|(a, b)| a != b).count();
            }
            assert_eq!(
                batched[point],
                BathtubPoint {
                    rate,
                    errors,
                    bits: bits_per_seed * seeds as usize
                },
                "rate point {point} diverged from the scalar jittered transmit"
            );
        }
    }

    #[test]
    fn render_marks_clean_and_dirty_rows() {
        let text = render(&curve());
        assert!(text.contains("clean"));
        assert!(text.contains("BER"));
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_rates_rejected() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let _ = rate_bathtub(&tech, &design, &[], TimeInterval::zero(), 10, 1);
    }
}
