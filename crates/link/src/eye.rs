//! Pulse-domain "eye" statistics: the distribution of pulse width and
//! swing seen at the demodulator over live traffic.
//!
//! A clocked receiver's eye diagram has voltage and time margins; the
//! asynchronous SRLR's equivalents are the received pulse's *swing margin*
//! (above the final stage's sense threshold) and *width margin* (above the
//! demodulator's capture width), plus the *ISI margin* (sense threshold
//! minus the worst residual baseline). This module measures all three
//! over a PRBS stream — the quantities a silicon bring-up would read off
//! the on-chip scope.

use crate::link::SrlrLink;
use crate::prbs::Prbs;
use srlr_core::PulseState;
use srlr_units::{TimeInterval, Voltage};

/// Eye statistics of a link under PRBS traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct EyeReport {
    /// Number of `1` bits observed.
    pub ones: usize,
    /// Smallest received pulse width.
    pub min_width: TimeInterval,
    /// Mean received pulse width.
    pub mean_width: TimeInterval,
    /// Largest received pulse width.
    pub max_width: TimeInterval,
    /// Smallest swing at the *final stage's input* (the critical
    /// detection point).
    pub min_swing: Voltage,
    /// Mean swing at the final stage's input.
    pub mean_swing: Voltage,
    /// Worst residual baseline on any segment (ISI).
    pub worst_baseline: Voltage,
    /// The final stage's sense threshold.
    pub sense_threshold: Voltage,
    /// The demodulator's minimum capture width.
    pub demod_min_width: TimeInterval,
}

impl EyeReport {
    /// Swing margin: worst received swing over the sense threshold.
    pub fn swing_margin(&self) -> Voltage {
        self.min_swing - self.sense_threshold
    }

    /// Width margin: worst received width over the capture limit.
    pub fn width_margin(&self) -> TimeInterval {
        self.min_width - self.demod_min_width
    }

    /// ISI margin: sense threshold over the worst idle-wire residue.
    pub fn isi_margin(&self) -> Voltage {
        self.sense_threshold - self.worst_baseline
    }

    /// `true` when every margin is positive — the eye is open.
    pub fn is_open(&self) -> bool {
        self.swing_margin().volts() > 0.0
            && self.width_margin().seconds() > 0.0
            && self.isi_margin().volts() > 0.0
    }
}

impl core::fmt::Display for EyeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "eye over {} ones: width {}..{} (margin {}), swing >= {} (margin {}), ISI margin {}",
            self.ones,
            self.min_width,
            self.max_width,
            self.width_margin(),
            self.min_swing,
            self.swing_margin(),
            self.isi_margin(),
        )
    }
}

/// Measures the eye of `link` over `bits` PRBS bits.
///
/// The measurement replays the link's per-segment ISI tracking while
/// recording the pulse state entering the final stage and leaving it —
/// the same propagation [`SrlrLink::transmit`] performs, instrumented.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn measure_eye(link: &SrlrLink, bits: usize) -> EyeReport {
    assert!(bits > 0, "need at least one bit");
    let stages = link.chain().stages();
    let n = stages.len();
    let last = &stages[n - 1];
    let t_bit = link.config().data_rate.bit_period();

    let mut gen = Prbs::prbs15();
    let tx = gen.take_bits(bits);

    // Reuse the link's own transmit for the baseline diagnostics…
    let outcome = link.transmit(&tx);

    // …and re-propagate per bit to collect the final-stage pulse stats
    // (ISI-free per-pulse statistics: the width/swing the chain's settled
    // operation delivers; the baseline worst case comes from transmit).
    let mut ones = 0usize;
    let mut min_w = f64::MAX;
    let mut max_w = f64::MIN;
    let mut sum_w = 0.0;
    let mut min_s = f64::MAX;
    let mut sum_s = 0.0;
    for &bit in &tx {
        if !bit {
            continue;
        }
        let mut p: PulseState = link.chain().nominal_input_pulse();
        for stage in &stages[..n - 1] {
            p = stage.process(p).output;
            if !p.is_valid() {
                break;
            }
        }
        if !p.is_valid() {
            continue;
        }
        ones += 1;
        // `p` is the pulse entering the final stage.
        min_s = min_s.min(p.swing.volts());
        sum_s += p.swing.volts();
        let out = last.process(p).output;
        if out.is_valid() {
            let w = out.width.seconds();
            min_w = min_w.min(w);
            max_w = max_w.max(w);
            sum_w += w;
        }
    }
    assert!(ones > 0, "PRBS stream contained no surviving ones");

    EyeReport {
        ones,
        min_width: TimeInterval::from_seconds(min_w),
        mean_width: TimeInterval::from_seconds(sum_w / ones as f64),
        max_width: TimeInterval::from_seconds(max_w.max(min_w)),
        min_swing: Voltage::from_volts(min_s),
        mean_swing: Voltage::from_volts(sum_s / ones as f64),
        worst_baseline: outcome.max_baseline,
        sense_threshold: last.sense_threshold,
        demod_min_width: link.config().demod_min_width,
    }
    .clamp_to_bit_period(t_bit)
}

impl EyeReport {
    /// Widths cannot exceed the bit period in steady state; clamp the
    /// report for presentation (the map itself can transiently exceed it
    /// on the first pulse).
    fn clamp_to_bit_period(mut self, t_bit: TimeInterval) -> Self {
        self.max_width = self.max_width.min(t_bit);
        self.mean_width = self.mean_width.min(t_bit);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_core::SrlrDesign;
    use srlr_tech::{GlobalVariation, ProcessCorner, Technology};
    use srlr_units::DataRate;

    fn nominal_eye() -> EyeReport {
        let link = SrlrLink::paper_test_chip(&Technology::soi45());
        measure_eye(&link, 2_000)
    }

    #[test]
    fn nominal_eye_is_open() {
        let eye = nominal_eye();
        assert!(eye.is_open(), "{eye}");
        assert!(eye.swing_margin().millivolts() > 10.0);
        assert!(eye.width_margin().picoseconds() > 20.0);
        assert!(eye.isi_margin().millivolts() > 50.0);
    }

    #[test]
    fn eye_statistics_are_ordered() {
        // The nominal chain delivers identical pulses, so the statistics
        // may coincide to within float rounding.
        let eps = TimeInterval::from_femtoseconds(1.0);
        let eye = nominal_eye();
        assert!(eye.min_width <= eye.mean_width + eps);
        assert!(eye.mean_width <= eye.max_width + eps);
        assert!(eye.min_swing <= eye.mean_swing + Voltage::from_microvolts(1.0));
        assert!(eye.ones > 500);
    }

    #[test]
    fn eye_closes_at_a_hostile_corner() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech).with_adaptive_swing(false);
        let var = ProcessCorner::SlowSlow.variation(&tech);
        let link = srlr_link_build(&tech, &design, &var);
        // All pulses die — measure_eye cannot even find survivors.
        let result = std::panic::catch_unwind(|| measure_eye(&link, 500));
        assert!(result.is_err(), "SS fixed-bias eye should be dead");
    }

    fn srlr_link_build(
        tech: &Technology,
        design: &SrlrDesign,
        var: &srlr_tech::GlobalVariation,
    ) -> SrlrLink {
        SrlrLink::on_die(tech, design, crate::link::LinkConfig::paper_default(), var)
    }

    #[test]
    fn higher_rate_narrows_isi_margin() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let at = |gbps: f64| {
            let config = crate::link::LinkConfig::paper_default()
                .with_data_rate(DataRate::from_gigabits_per_second(gbps));
            let link = SrlrLink::on_die(&tech, &design, config, &GlobalVariation::nominal());
            measure_eye(&link, 1_000).isi_margin()
        };
        assert!(at(5.0) < at(2.0), "ISI margin must shrink with rate");
    }

    #[test]
    fn display_mentions_margins() {
        let text = nominal_eye().to_string();
        assert!(text.contains("margin"));
        assert!(text.contains("eye over"));
    }
}
