//! Linear-feedback shift-register PRBS generators.
//!
//! The test chip generates its stimulus on-chip from a PRBS generator;
//! these are the standard ITU-T fibonacci LFSRs (PRBS-7: x^7 + x^6 + 1,
//! PRBS-15: x^15 + x^14 + 1, PRBS-31: x^31 + x^28 + 1), producing maximal
//! sequences of length `2^n − 1`.

/// A Fibonacci LFSR PRBS generator.
///
/// # Examples
///
/// ```
/// use srlr_link::Prbs;
///
/// let mut gen = Prbs::prbs7();
/// let first: Vec<bool> = gen.by_ref().take(127).collect();
/// // A maximal PRBS-7 sequence repeats after 127 bits.
/// let second: Vec<bool> = gen.take(127).collect();
/// assert_eq!(first, second);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Prbs {
    state: u32,
    /// Register length n.
    order: u32,
    /// Bit positions (1-based from the LSB end) XORed for feedback.
    taps: (u32, u32),
}

impl Prbs {
    /// PRBS-7 (`x^7 + x^6 + 1`), period 127.
    pub fn prbs7() -> Self {
        Self::with_seed_internal(7, (7, 6), 0x7F)
    }

    /// PRBS-15 (`x^15 + x^14 + 1`), period 32 767.
    pub fn prbs15() -> Self {
        Self::with_seed_internal(15, (15, 14), 0x7FFF)
    }

    /// PRBS-31 (`x^31 + x^28 + 1`), period 2 147 483 647.
    pub fn prbs31() -> Self {
        Self::with_seed_internal(31, (31, 28), 0x7FFF_FFFF)
    }

    /// A PRBS-7 generator with an explicit non-zero seed (for independent
    /// lanes).
    ///
    /// # Panics
    ///
    /// Panics if the seed is zero after masking to 7 bits (the all-zero
    /// LFSR state is absorbing).
    pub fn prbs7_with_seed(seed: u32) -> Self {
        Self::with_seed_internal(7, (7, 6), seed)
    }

    /// A PRBS-15 generator with an explicit non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics if the seed is zero after masking to 15 bits (the all-zero
    /// LFSR state is absorbing).
    pub fn prbs15_with_seed(seed: u32) -> Self {
        Self::with_seed_internal(15, (15, 14), seed)
    }

    /// A PRBS-15 generator for stream `index` of an experiment keyed by
    /// `seed`: each index gets an independent, reproducible register state
    /// regardless of which other indices were (or weren't) generated.
    ///
    /// The experiment seed is salted so the PRBS streams are decorrelated
    /// from any Gaussian mismatch streams derived from the same seed.
    pub fn prbs15_for_stream(seed: u64, index: u64) -> Self {
        const PRBS_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;
        let raw = srlr_rng::stream_seed(seed ^ PRBS_SALT, index);
        // Fold to 15 bits; the all-zero state is remapped to the default
        // full register so every index yields a valid maximal sequence.
        // srlr-lint: allow(lossy-cast, reason = "intentional truncation: the fold keeps only the low 15 bits via the mask")
        let mut state = (raw ^ (raw >> 15) ^ (raw >> 30) ^ (raw >> 45)) as u32 & 0x7FFF;
        if state == 0 {
            state = 0x7FFF;
        }
        Self::prbs15_with_seed(state)
    }

    fn with_seed_internal(order: u32, taps: (u32, u32), seed: u32) -> Self {
        let mask = (1u32 << order) - 1;
        let state = seed & mask;
        assert!(state != 0, "LFSR seed must be non-zero within the register");
        Self { state, order, taps }
    }

    /// The sequence period, `2^order − 1`.
    pub fn period(&self) -> u64 {
        (1u64 << self.order) - 1
    }

    /// Generates the next bit and advances the register.
    pub fn next_bit(&mut self) -> bool {
        let (a, b) = self.taps;
        let bit = ((self.state >> (a - 1)) ^ (self.state >> (b - 1))) & 1;
        let mask = (1u32 << self.order) - 1;
        self.state = ((self.state << 1) | bit) & mask;
        bit == 1
    }

    /// Collects `n` bits into a vector.
    pub fn take_bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

impl Iterator for Prbs {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.next_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn prbs7_is_maximal() {
        // Every non-zero 7-bit state must be visited exactly once.
        let mut gen = Prbs::prbs7();
        let mut states = HashSet::new();
        for _ in 0..127 {
            assert!(states.insert(gen.state), "state revisited early");
            gen.next_bit();
        }
        assert_eq!(states.len(), 127);
    }

    #[test]
    fn prbs7_ones_density_is_half() {
        let mut gen = Prbs::prbs7();
        let ones = gen.take_bits(127).iter().filter(|&&b| b).count();
        // A maximal sequence has 2^(n-1) ones: 64 of 127.
        assert_eq!(ones, 64);
    }

    #[test]
    fn prbs15_period_declared() {
        assert_eq!(Prbs::prbs15().period(), 32_767);
        assert_eq!(Prbs::prbs31().period(), 2_147_483_647);
    }

    #[test]
    fn prbs15_does_not_repeat_within_4096() {
        let mut gen = Prbs::prbs15();
        let a = gen.take_bits(2048);
        let b = gen.take_bits(2048);
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_lanes_differ() {
        let mut a = Prbs::prbs7_with_seed(0x11);
        let mut b = Prbs::prbs7_with_seed(0x55);
        assert_ne!(a.take_bits(64), b.take_bits(64));
    }

    #[test]
    fn seeded_generator_is_deterministic() {
        let mut a = Prbs::prbs7_with_seed(0x2A);
        let mut b = Prbs::prbs7_with_seed(0x2A);
        assert_eq!(a.take_bits(256), b.take_bits(256));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        let _ = Prbs::prbs7_with_seed(0);
    }

    #[test]
    fn stream_prbs_is_deterministic_per_index() {
        let mut a = Prbs::prbs15_for_stream(2013, 17);
        let mut b = Prbs::prbs15_for_stream(2013, 17);
        assert_eq!(a.take_bits(512), b.take_bits(512));
    }

    #[test]
    fn stream_prbs_indices_are_independent() {
        let mut states = HashSet::new();
        for index in 0..64 {
            let gen = Prbs::prbs15_for_stream(2013, index);
            states.insert(gen.state);
        }
        // 64 indices should land on (nearly) 64 distinct register states;
        // collisions of the 15-bit fold are possible but must be rare.
        assert!(states.len() >= 60, "only {} distinct states", states.len());
    }

    #[test]
    fn iterator_interface() {
        let gen = Prbs::prbs7();
        let bits: Vec<bool> = gen.take(10).collect();
        assert_eq!(bits.len(), 10);
    }

    #[test]
    fn contains_runs_of_ones_and_zeros() {
        // The '11110'-style worst case must occur naturally in PRBS-7:
        // a maximal LFSR of order 7 contains a run of 7 ones and 6 zeros.
        let mut gen = Prbs::prbs7();
        let bits = gen.take_bits(127);
        let mut max_ones = 0usize;
        let mut max_zeros = 0usize;
        let mut run = 0usize;
        let mut last = None;
        for &b in &bits {
            if Some(b) == last {
                run += 1;
            } else {
                run = 1;
                last = Some(b);
            }
            if b {
                max_ones = max_ones.max(run);
            } else {
                max_zeros = max_zeros.max(run);
            }
        }
        assert_eq!(max_ones, 7);
        assert_eq!(max_zeros, 6);
    }
}
