//! Lockstep stress harness: drives a set of uncertified links through
//! bit patterns in one [`DieBatch`], retiring a lane on its first
//! corrupted bit — the batched analogue of the scalar early exit in
//! [`SrlrLink::transmits_cleanly`](crate::link::SrlrLink::transmits_cleanly).
//!
//! The harness owns the per-lane verdicts so callers (Monte Carlo
//! batches, shmoo cells) only decide *which* links to load and *which*
//! patterns to run; the kill-on-error bookkeeping is identical either
//! way, which is what keeps both batched paths bit-identical to their
//! scalar references.
//!
//! Every check takes the caller's [`Profiler`]: each advanced slot is a
//! `bit_slot` frame (recorded inside [`DieBatch`]) and each retired
//! lane bumps a `lane_kill` tally. A disabled profiler costs one
//! branch per call and never touches the arithmetic, so the
//! bit-identity contract is unaffected.

use crate::link::SrlrLink;
use srlr_core::DieBatch;
use srlr_telemetry::Profiler;

/// One [`DieBatch`] plus kill-on-error verdicts over its lanes.
pub(crate) struct Lockstep {
    batch: DieBatch,
    ok: Vec<bool>,
    tx: Vec<bool>,
    rx: Vec<bool>,
}

impl Lockstep {
    /// One lane per `(tag, link)` entry; the tags are the caller's
    /// business (typically indices back into its own result array).
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub(crate) fn new(links: &[(usize, SrlrLink)]) -> Self {
        assert!(!links.is_empty(), "lockstep run needs at least one lane");
        let stages = links[0].1.chain().stages().len();
        let mut batch = DieBatch::new(stages, links.len());
        for (lane, (_, link)) in links.iter().enumerate() {
            batch.load_lane(
                lane,
                link.chain(),
                link.config().data_rate.bit_period(),
                link.config().demod_min_width,
            );
        }
        Self {
            batch,
            ok: vec![true; links.len()],
            tx: vec![false; links.len()],
            rx: vec![false; links.len()],
        }
    }

    /// Whether any lane is still unrefuted.
    pub(crate) fn any_contending(&self) -> bool {
        self.batch.any_alive()
    }

    /// Whether `lane` is still unrefuted.
    pub(crate) fn is_contending(&self, lane: usize) -> bool {
        self.batch.is_alive(lane)
    }

    /// Per-lane verdicts so far: `true` = no corrupted bit yet.
    pub(crate) fn verdicts(&self) -> &[bool] {
        &self.ok
    }

    /// Transmits `pattern` to every contending lane on a freshly
    /// drained link (matching one `transmits_cleanly` call per lane).
    pub(crate) fn check_shared(&mut self, pattern: &[bool], prof: &mut Profiler) {
        if !self.batch.any_alive() {
            return;
        }
        self.batch.reset_state();
        for &bit in pattern {
            self.tx.fill(bit);
            if self.step(prof) {
                break;
            }
        }
    }

    /// Fresh-link transmission with per-lane stimulus of `len` bits.
    /// `None` lanes are already retired; their tx bit is irrelevant
    /// (the batch skips dead lanes).
    pub(crate) fn check_per_lane(
        &mut self,
        bits: &[Option<Vec<bool>>],
        len: usize,
        prof: &mut Profiler,
    ) {
        if !self.batch.any_alive() {
            return;
        }
        self.batch.reset_state();
        for slot in 0..len {
            for (lane, lane_bits) in bits.iter().enumerate() {
                if let Some(lane_bits) = lane_bits {
                    self.tx[lane] = lane_bits[slot];
                }
            }
            if self.step(prof) {
                break;
            }
        }
    }

    /// One bit slot; returns `true` when every lane has been retired.
    fn step(&mut self, prof: &mut Profiler) -> bool {
        self.batch
            .advance_slot_profiled(&self.tx, &mut self.rx, prof);
        for lane in 0..self.ok.len() {
            if self.batch.is_alive(lane) && self.rx[lane] != self.tx[lane] {
                self.ok[lane] = false;
                self.batch.kill_lane(lane);
                prof.count("lane_kill");
            }
        }
        !self.batch.any_alive()
    }
}
