//! Self-profiling: an aggregated span-hierarchy profiler behind the
//! [`Clock`] abstraction.
//!
//! [`Profiler`] extends the flat spans of [`crate::Collector`] into a
//! proper call tree: every frame knows its parent, its invocation
//! count, and its total versus self time (total minus time attributed
//! to child frames). Like the collector it is **zero-cost when
//! disabled** — one `None` branch, no allocation — so instrumented hot
//! loops (the batched MC kernel, the NoC step loop, the model checker)
//! pay nothing unless a `--profile-out` flag turned profiling on.
//!
//! # Determinism contract (DESIGN.md §8)
//!
//! Profile *structure* — the set of frame paths and their invocation
//! counts — is a pure function of the work performed: parallel workers
//! profile into forked [`Profiler::child`] trees that are merged back
//! in item-index order, exactly like collector children, so structure
//! is identical at any thread count. Profile *timing* depends on the
//! installed [`Clock`]: release binaries use [`Clock::wall`], while
//! tests install [`Clock::tick`] and get bit-exact timings too. Timing
//! lives only in this sink (the [`Profile`] snapshot / folded output);
//! the JSONL, Chrome-trace, and metrics sinks never see it, which keeps
//! the workspace's byte-identity assertions intact.

use crate::clock::Clock;
use crate::json::{self, Json};
use std::fmt::Write as _;

/// Version stamp written into every serialized [`Profile`].
pub const PROFILE_VERSION: u32 = 1;

/// One aggregated call-tree node (unique by path, not by invocation).
#[derive(Debug, Clone)]
struct Node {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    count: u64,
    total_s: f64,
    child_s: f64,
}

/// A live frame on the profiler stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    node: usize,
    start_s: f64,
}

#[derive(Debug)]
struct ProfInner {
    clock: Clock,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<Frame>,
}

/// Aggregating call-tree profiler; disabled by default and free when
/// disabled (every method is one branch on a `None`).
#[derive(Debug, Default)]
pub struct Profiler {
    inner: Option<Box<ProfInner>>,
}

impl ProfInner {
    /// Index of the child of `parent` (or root) named `name`, creating
    /// it if this path is new.
    fn find_or_create(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&found) = siblings.iter().find(|&&c| self.nodes[c].name == name) {
            return found;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_owned(),
            parent,
            children: Vec::new(),
            count: 0,
            total_s: 0.0,
            child_s: 0.0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Merges `src[idx]` (and its subtree) under `parent` of `self`.
    fn merge_node(&mut self, parent: Option<usize>, src: &[Node], idx: usize) {
        let s = src[idx].clone();
        let dst = self.find_or_create(parent, &s.name);
        self.nodes[dst].count += s.count;
        self.nodes[dst].total_s += s.total_s;
        self.nodes[dst].child_s += s.child_s;
        for c in s.children {
            self.merge_node(Some(dst), src, c);
        }
    }

    /// Appends `idx`'s subtree to `profile` in depth-first preorder.
    fn snapshot_node(&self, profile: &mut Profile, idx: usize, parent: Option<usize>) {
        let n = &self.nodes[idx];
        let out = profile.nodes.len();
        profile.nodes.push(ProfileNode {
            name: n.name.clone(),
            parent,
            count: n.count,
            total_s: n.total_s,
            self_s: (n.total_s - n.child_s).max(0.0),
        });
        for &c in &n.children {
            self.snapshot_node(profile, c, Some(out));
        }
    }
}

impl Profiler {
    /// A profiler that records nothing and never allocates.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording profiler timing frames against `clock`.
    pub fn enabled(clock: Clock) -> Self {
        Self {
            inner: Some(Box::new(ProfInner {
                clock,
                nodes: Vec::new(),
                roots: Vec::new(),
                stack: Vec::new(),
            })),
        }
    }

    /// Whether frames are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a frame named `name` under the currently open frame (or at
    /// the root). Every `enter` must be paired with an [`Profiler::exit`].
    pub fn enter(&mut self, name: &str) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let parent = inner.stack.last().map(|f| f.node);
        let node = inner.find_or_create(parent, name);
        let start_s = inner.clock.now();
        inner.stack.push(Frame { node, start_s });
    }

    /// Closes the innermost open frame, charging its elapsed time to
    /// the frame's total and to the parent's child time. An `exit`
    /// without a matching `enter` is a no-op.
    pub fn exit(&mut self) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let Some(frame) = inner.stack.pop() else {
            return;
        };
        let dt = (inner.clock.now() - frame.start_s).max(0.0);
        let node = &mut inner.nodes[frame.node];
        node.count += 1;
        node.total_s += dt;
        if let Some(p) = node.parent {
            inner.nodes[p].child_s += dt;
        }
    }

    /// Bumps the invocation count of a zero-duration frame named `name`
    /// under the currently open frame — an event tally (certificate
    /// hits, killed lanes) that costs no clock read and no time.
    pub fn count(&mut self, name: &str) {
        self.count_n(name, 1);
    }

    /// [`Profiler::count`] by `n` at once.
    pub fn count_n(&mut self, name: &str, n: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let parent = inner.stack.last().map(|f| f.node);
        let node = inner.find_or_create(parent, name);
        inner.nodes[node].count += n;
    }

    /// A fresh profiler of the same kind (same clock family, restarted)
    /// for one parallel work item; merge it back with
    /// [`Profiler::merge`] in item-index order.
    pub fn child(&self) -> Profiler {
        match &self.inner {
            Some(inner) => Profiler::enabled(inner.clock.fork()),
            None => Profiler::disabled(),
        }
    }

    /// Folds `other`'s tree into this one under the currently open
    /// frame: matching paths sum their counts and times. Merging in
    /// item-index order keeps the structure thread-count-invariant.
    pub fn merge(&mut self, other: Profiler) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let Some(src) = other.inner else {
            return;
        };
        let attach = inner.stack.last().map(|f| f.node);
        for &root in &src.roots {
            // Time spent in a merged subtree overlaps the open frame's
            // wall time (workers run concurrently), so it charges the
            // attach point's child time; self time clamps at zero.
            if let Some(p) = attach {
                inner.nodes[p].child_s += src.nodes[root].total_s;
            }
            inner.merge_node(attach, &src.nodes, root);
        }
    }

    /// An immutable [`Profile`] snapshot of the tree so far (open
    /// frames contribute their finished invocations only).
    pub fn snapshot(&self) -> Profile {
        let mut profile = Profile {
            clock: String::new(),
            nodes: Vec::new(),
        };
        if let Some(inner) = self.inner.as_deref() {
            profile.clock = inner.clock.kind().to_owned();
            for &root in &inner.roots {
                inner.snapshot_node(&mut profile, root, None);
            }
        }
        profile
    }
}

/// One node of a serialized profile (depth-first preorder: a parent
/// always precedes its children, so `parent` indices point backwards).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Frame name as passed to [`Profiler::enter`].
    pub name: String,
    /// Index of the parent node, `None` for roots.
    pub parent: Option<usize>,
    /// Completed invocations (or tally for count-only frames).
    pub count: u64,
    /// Seconds spent in this frame including children.
    pub total_s: f64,
    /// Seconds spent in this frame excluding children (clamped at 0:
    /// merged parallel children can legitimately exceed the parent's
    /// elapsed wall time).
    pub self_s: f64,
}

/// An immutable aggregated profile: the timing sink. Serialized with a
/// version stamp; rendered to folded stacks and hotspot tables by
/// `srlr-prof`.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Which [`Clock`] kind produced the timings (`wall`, `tick`,
    /// `manual`, or empty for a disabled profiler's snapshot).
    pub clock: String,
    /// Nodes in depth-first preorder.
    pub nodes: Vec<ProfileNode>,
}

impl Profile {
    /// The root-to-node path of node `i`, joined with `;` (the folded
    /// stack convention).
    pub fn path(&self, i: usize) -> String {
        let mut parts = Vec::new();
        let mut cur = self.nodes.get(i);
        while let Some(n) = cur {
            parts.push(n.name.as_str());
            cur = n.parent.and_then(|p| self.nodes.get(p));
        }
        parts.reverse();
        parts.join(";")
    }

    /// Serializes the profile as versioned JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"srlr_profile_version\": {PROFILE_VERSION},");
        out.push_str("  \"clock\": ");
        json::write_str(&mut out, &self.clock);
        out.push_str(",\n  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json::write_str(&mut out, &n.name);
            out.push_str(", \"parent\": ");
            match n.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ", \"count\": {}, \"total_s\": ", n.count);
            json::write_f64(&mut out, n.total_s);
            out.push_str(", \"self_s\": ");
            json::write_f64(&mut out, n.self_s);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a profile serialized by [`Profile::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Profile, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("srlr_profile_version")
            .and_then(Json::as_num)
            .ok_or("missing srlr_profile_version")?;
        if version != f64::from(PROFILE_VERSION) {
            return Err(format!("unsupported profile version {version}"));
        }
        let clock = doc
            .get("clock")
            .and_then(Json::as_str)
            .ok_or("missing clock")?
            .to_owned();
        let nodes_json = doc
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("missing nodes array")?;
        let mut nodes = Vec::with_capacity(nodes_json.len());
        for (i, n) in nodes_json.iter().enumerate() {
            let name = n
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("node {i}: missing name"))?
                .to_owned();
            let parent = match n.get("parent") {
                Some(Json::Null) | None => None,
                Some(p) => {
                    let p = p.as_num().ok_or_else(|| format!("node {i}: bad parent"))? as usize;
                    if p >= i {
                        return Err(format!("node {i}: parent {p} does not precede it"));
                    }
                    Some(p)
                }
            };
            let num = |key: &str| {
                n.get(key)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("node {i}: missing {key}"))
            };
            nodes.push(ProfileNode {
                name,
                parent,
                count: num("count")? as u64,
                total_s: num("total_s")?,
                self_s: num("self_s")?,
            });
        }
        Ok(Profile { clock, nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_profiler() -> Profiler {
        Profiler::enabled(Clock::tick(1.0))
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        p.enter("a");
        p.count("c");
        p.exit();
        assert!(!p.is_enabled());
        assert!(p.snapshot().nodes.is_empty());
        assert_eq!(p.snapshot().clock, "");
    }

    #[test]
    fn single_frame_times_against_the_clock() {
        let mut p = tick_profiler();
        p.enter("work"); // read 0 -> start 0
        p.exit(); // read 1 -> end 1
        let s = p.snapshot();
        assert_eq!(s.clock, "tick");
        assert_eq!(s.nodes.len(), 1);
        assert_eq!(s.nodes[0].name, "work");
        assert_eq!(s.nodes[0].count, 1);
        assert_eq!(s.nodes[0].total_s, 1.0);
        assert_eq!(s.nodes[0].self_s, 1.0);
        assert_eq!(s.nodes[0].parent, None);
    }

    #[test]
    fn nested_frames_split_self_from_total() {
        let mut p = tick_profiler();
        p.enter("outer"); // t=0
        p.enter("inner"); // t=1
        p.exit(); // t=2: inner total 1
        p.exit(); // t=3: outer total 3, child 1
        let s = p.snapshot();
        assert_eq!(s.nodes.len(), 2);
        let outer = &s.nodes[0];
        let inner = &s.nodes[1];
        assert_eq!(
            (outer.name.as_str(), outer.total_s, outer.self_s),
            ("outer", 3.0, 2.0)
        );
        assert_eq!(
            (inner.name.as_str(), inner.total_s, inner.self_s),
            ("inner", 1.0, 1.0)
        );
        assert_eq!(inner.parent, Some(0));
        assert_eq!(s.path(1), "outer;inner");
    }

    #[test]
    fn repeated_frames_aggregate_by_path() {
        let mut p = tick_profiler();
        for _ in 0..3 {
            p.enter("loop");
            p.exit();
        }
        let s = p.snapshot();
        assert_eq!(s.nodes.len(), 1);
        assert_eq!(s.nodes[0].count, 3);
        assert_eq!(s.nodes[0].total_s, 3.0);
    }

    #[test]
    fn count_frames_cost_no_time() {
        let mut p = tick_profiler();
        p.enter("scan");
        p.count("hit");
        p.count("hit");
        p.count_n("miss", 5);
        p.exit();
        let s = p.snapshot();
        assert_eq!(s.nodes.len(), 3);
        assert_eq!(s.nodes[0].total_s, 1.0, "counts read no clock");
        let hit = s.nodes.iter().find(|n| n.name == "hit").expect("hit node");
        assert_eq!((hit.count, hit.total_s), (2, 0.0));
        let miss = s
            .nodes
            .iter()
            .find(|n| n.name == "miss")
            .expect("miss node");
        assert_eq!(miss.count, 5);
    }

    #[test]
    fn recursion_nests_by_path() {
        let mut p = tick_profiler();
        p.enter("f");
        p.enter("f");
        p.exit();
        p.exit();
        let s = p.snapshot();
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.path(1), "f;f");
    }

    #[test]
    fn unbalanced_exit_is_a_no_op() {
        let mut p = tick_profiler();
        p.exit();
        p.enter("a");
        p.exit();
        p.exit();
        assert_eq!(p.snapshot().nodes.len(), 1);
    }

    #[test]
    fn children_merge_in_index_order_with_identical_structure() {
        // Simulates two workers; merging in index order must yield the
        // same structure regardless of who "finished" first.
        let run = |order: [usize; 2]| {
            let mut root = tick_profiler();
            root.enter("sweep");
            let mut kids: Vec<Option<Profiler>> = vec![None, None];
            for &i in &order {
                let mut c = root.child();
                c.enter("item");
                c.enter(if i == 0 { "fast" } else { "slow" });
                c.exit();
                c.exit();
                kids[i] = Some(c);
            }
            for c in kids.into_iter().flatten() {
                root.merge(c);
            }
            root.exit();
            let s = root.snapshot();
            s.nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (s.path(i), n.count))
                .collect::<Vec<_>>()
        };
        assert_eq!(run([0, 1]), run([1, 0]), "merge order is index order");
        let shape = run([0, 1]);
        assert!(shape.iter().any(|(p, _)| p == "sweep;item;fast"));
        assert!(shape.iter().any(|(p, _)| p == "sweep;item;slow"));
        let item = shape.iter().find(|(p, _)| p == "sweep;item").expect("item");
        assert_eq!(item.1, 2, "both children merged");
    }

    #[test]
    fn merged_parallel_time_clamps_parent_self_at_zero() {
        let mut root = Profiler::enabled(Clock::manual());
        root.enter("region"); // 0s region, but children carry 5s each
        for _ in 0..2 {
            let c = root.child();
            let mut c = c;
            c.enter("work");
            // Advance this child's clock by 5 s inside the frame.
            if let Some(inner) = &c.inner {
                inner.clock.advance(5.0);
            }
            c.exit();
            root.merge(c);
        }
        root.exit();
        let s = root.snapshot();
        let region = &s.nodes[0];
        assert_eq!(region.self_s, 0.0, "parallel child time cannot go negative");
        let work = s.nodes.iter().find(|n| n.name == "work").expect("work");
        assert_eq!(work.total_s, 10.0);
        assert_eq!(work.count, 2);
    }

    #[test]
    fn merging_into_an_empty_profiler_adopts_roots() {
        let mut root = tick_profiler();
        let mut c = root.child();
        c.enter("a");
        c.exit();
        root.merge(c);
        let s = root.snapshot();
        assert_eq!(s.nodes.len(), 1);
        assert_eq!(s.nodes[0].parent, None);
    }

    #[test]
    fn profile_json_round_trips() {
        let mut p = tick_profiler();
        p.enter("outer \"quoted\"");
        p.enter("inner");
        p.exit();
        p.count("tally");
        p.exit();
        let s = p.snapshot();
        let text = s.to_json();
        let back = Profile::from_json(&text).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn profile_json_rejects_bad_documents() {
        assert!(Profile::from_json("{}").is_err());
        assert!(Profile::from_json(
            "{\"srlr_profile_version\": 99, \"clock\": \"tick\", \"nodes\": []}"
        )
        .is_err());
        // Forward parent reference.
        let bad = "{\"srlr_profile_version\": 1, \"clock\": \"tick\", \"nodes\": [{\"name\": \"a\", \"parent\": 3, \"count\": 1, \"total_s\": 0, \"self_s\": 0}]}";
        assert!(Profile::from_json(bad).is_err());
    }

    #[test]
    fn snapshot_is_preorder() {
        let mut p = tick_profiler();
        p.enter("a");
        p.enter("b");
        p.exit();
        p.exit();
        p.enter("c");
        p.exit();
        let s = p.snapshot();
        let names: Vec<&str> = s.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        for (i, n) in s.nodes.iter().enumerate() {
            if let Some(parent) = n.parent {
                assert!(parent < i, "parents precede children");
            }
        }
    }
}
