//! SARIF 2.1.0 single-run document builder.
//!
//! SARIF (Static Analysis Results Interchange Format) is the exchange
//! format CI systems and code-review UIs ingest; emitting it lets a
//! tool's findings annotate pull requests without any custom glue. The
//! document is assembled by hand on top of [`crate::json`]'s string
//! escaping — the workspace stays dependency-free.
//!
//! [`SarifDoc`] is the reusable builder: `srlr-lint` renders its report
//! through it, and `srlr-cli`'s `verify-noc` reuses it for
//! model-checker counterexamples. It lives here (rather than in the
//! lint crate) because both producers already depend on telemetry, and
//! the layering DAG forbids the CLI's siblings from reaching into a
//! tool crate.

use crate::json::write_str;

/// Builder for a single-run SARIF 2.1.0 document: one tool driver, its
/// rule table, and a flat list of results.
#[derive(Debug, Clone)]
pub struct SarifDoc {
    header: String,
    rules: String,
    rule_count: usize,
    results: String,
    result_count: usize,
}

impl SarifDoc {
    /// Starts a document for the named tool.
    pub fn new(tool: &str, information_uri: &str) -> Self {
        let mut header = String::with_capacity(256);
        header.push_str("{\"$schema\":");
        write_str(&mut header, "https://json.schemastore.org/sarif-2.1.0.json");
        header.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":");
        write_str(&mut header, tool);
        header.push_str(",\"informationUri\":");
        write_str(&mut header, information_uri);
        SarifDoc {
            header,
            rules: String::new(),
            rule_count: 0,
            results: String::new(),
            result_count: 0,
        }
    }

    /// Declares a rule in the driver's rule table.
    pub fn rule(&mut self, id: &str, description: &str) -> &mut Self {
        if self.rule_count > 0 {
            self.rules.push(',');
        }
        self.rule_count += 1;
        self.rules.push_str("{\"id\":");
        write_str(&mut self.rules, id);
        self.rules.push_str(",\"shortDescription\":{\"text\":");
        write_str(&mut self.rules, description);
        self.rules.push_str("}}");
        self
    }

    /// Appends one result. `level` is a SARIF severity (`"error"`,
    /// `"warning"`, `"note"`); `uri` is the artifact the result is
    /// anchored to (for model-checker findings, a synthetic URI naming
    /// the checked route).
    pub fn result(
        &mut self,
        rule: &str,
        level: &str,
        message: &str,
        uri: &str,
        line: u32,
        col: u32,
    ) -> &mut Self {
        if self.result_count > 0 {
            self.results.push(',');
        }
        self.result_count += 1;
        self.results.push_str("{\"ruleId\":");
        write_str(&mut self.results, rule);
        self.results.push_str(",\"level\":");
        write_str(&mut self.results, level);
        self.results.push_str(",\"message\":{\"text\":");
        write_str(&mut self.results, message);
        self.results
            .push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
        write_str(&mut self.results, uri);
        self.results.push_str(&format!(
            "}},\"region\":{{\"startLine\":{line},\"startColumn\":{col}}}}}}}]}}"
        ));
        self
    }

    /// Number of results appended so far.
    pub fn results_len(&self) -> usize {
        self.result_count
    }

    /// Renders the complete document, newline-terminated.
    pub fn render(&self) -> String {
        let mut out =
            String::with_capacity(self.header.len() + self.rules.len() + self.results.len() + 64);
        out.push_str(&self.header);
        out.push_str(",\"rules\":[");
        out.push_str(&self.rules);
        out.push_str("]}},\"results\":[");
        out.push_str(&self.results);
        out.push_str("]}]}");
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn results(doc: &Json) -> Vec<&Json> {
        let Json::Obj(top) = doc else {
            panic!("not an object")
        };
        let Some(Json::Arr(runs)) = top.get("runs") else {
            panic!("no runs")
        };
        let Json::Obj(run) = &runs[0] else {
            panic!("run not an object")
        };
        let Some(Json::Arr(results)) = run.get("results") else {
            panic!("no results")
        };
        results.iter().collect()
    }

    #[test]
    fn empty_document_is_valid_sarif() {
        let doc = SarifDoc::new("srlr-model", "https://example.invalid/srlr-model");
        let parsed = parse(&doc.render()).expect("valid JSON");
        let Json::Obj(top) = &parsed else { panic!() };
        assert_eq!(top.get("version"), Some(&Json::Str("2.1.0".into())));
        assert!(results(&parsed).is_empty());
        assert_eq!(doc.results_len(), 0);
    }

    #[test]
    fn the_builder_produces_a_parsable_run_for_any_tool() {
        let mut doc = SarifDoc::new("srlr-model", "https://example.invalid/srlr-model");
        doc.rule("no-overtaking", "retried heads are never overtaken");
        doc.result(
            "no-overtaking",
            "error",
            "flit 1 overtook flit 0\nwith a \"trace\"",
            "model://2x2/route/0,0-1,1",
            1,
            1,
        );
        assert_eq!(doc.results_len(), 1);
        let parsed = parse(&doc.render()).expect("valid JSON");
        let results = results(&parsed);
        assert_eq!(results.len(), 1);
        let Json::Obj(first) = results[0] else {
            panic!()
        };
        assert_eq!(
            first.get("ruleId"),
            Some(&Json::Str("no-overtaking".into()))
        );
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let mut doc = SarifDoc::new("a \"tool\"\nname", "uri://x");
        doc.rule("r\\1", "desc with \t control");
        doc.result("r\\1", "warning", "msg\u{1}", "a \"uri\"", 3, 4);
        assert!(parse(&doc.render()).is_ok());
    }
}
