//! Time sources for profiling and rate limiting.
//!
//! Everything else in the workspace is deterministic — simulated time,
//! trial indices, cycle counts — and the `det-time` lint bans the wall
//! clock outside the `crates/criterion` shim and this module. Profiling
//! is the one place real time is genuinely wanted, so [`Clock`] fences
//! it: release binaries profile against [`Clock::wall`], while tests use
//! [`Clock::tick`] (every read advances a virtual counter, so timings
//! are a pure function of the read sequence) or [`Clock::manual`]
//! (tests advance time explicitly). Profile *structure* — frame paths
//! and invocation counts — never depends on which clock is installed;
//! only the reported seconds do, which is why timing lives in its own
//! sink excluded from the byte-identity assertions (DESIGN.md §8).
//!
//! All variants are thread-safe: readings go through atomics so a
//! shared `Clock` can rate-limit [`crate::Progress`] from parallel
//! workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source reporting seconds as `f64`.
#[derive(Debug)]
pub struct Clock {
    inner: ClockInner,
}

#[derive(Debug)]
enum ClockInner {
    /// Real elapsed time since construction.
    Wall(Instant),
    /// Deterministic virtual time: each read returns the current count
    /// times `step_s`, then advances the count by one.
    Tick { count: AtomicU64, step_s: f64 },
    /// Time stands still until a test calls [`Clock::advance`].
    /// (Stored as `f64` bits for atomic access.)
    Manual(AtomicU64),
}

impl Clock {
    /// Real wall-clock time; `now` reports seconds since this call.
    /// Only for release profiling — never inside tests that assert
    /// deterministic output.
    pub fn wall() -> Self {
        Self {
            inner: ClockInner::Wall(Instant::now()),
        }
    }

    /// A deterministic clock that advances by `step_s` virtual seconds
    /// on every read. With this clock a profile's timings depend only
    /// on the sequence of reads, so tests can assert them exactly.
    pub fn tick(step_s: f64) -> Self {
        Self {
            inner: ClockInner::Tick {
                count: AtomicU64::new(0),
                step_s,
            },
        }
    }

    /// A clock that only moves when [`Clock::advance`] is called.
    pub fn manual() -> Self {
        Self {
            inner: ClockInner::Manual(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Current reading in seconds. Tick clocks advance on every read.
    pub fn now(&self) -> f64 {
        match &self.inner {
            ClockInner::Wall(epoch) => epoch.elapsed().as_secs_f64(),
            ClockInner::Tick { count, step_s } => {
                let n = count.fetch_add(1, Ordering::Relaxed);
                n as f64 * step_s
            }
            ClockInner::Manual(bits) => f64::from_bits(bits.load(Ordering::Relaxed)),
        }
    }

    /// Moves a [`Clock::manual`] clock forward by `seconds`; a no-op on
    /// the other variants.
    pub fn advance(&self, seconds: f64) {
        if let ClockInner::Manual(bits) = &self.inner {
            // Single-writer CAS loop: tests advance from one thread,
            // but keep it correct under contention anyway.
            let mut cur = bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + seconds).to_bits();
                match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// A fresh clock of the same kind, restarted at zero. Parallel
    /// workers profile into per-item children whose clocks are forked
    /// so durations stay local to the item.
    pub fn fork(&self) -> Self {
        match &self.inner {
            ClockInner::Wall(_) => Clock::wall(),
            ClockInner::Tick { step_s, .. } => Clock::tick(*step_s),
            ClockInner::Manual(bits) => Self {
                inner: ClockInner::Manual(AtomicU64::new(bits.load(Ordering::Relaxed))),
            },
        }
    }

    /// Short name of the clock kind, recorded in profile headers.
    pub fn kind(&self) -> &'static str {
        match &self.inner {
            ClockInner::Wall(_) => "wall",
            ClockInner::Tick { .. } => "tick",
            ClockInner::Manual(_) => "manual",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_advances_on_every_read() {
        let c = Clock::tick(0.5);
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.now(), 0.5);
        assert_eq!(c.now(), 1.0);
        assert_eq!(c.kind(), "tick");
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = Clock::manual();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.now(), 0.0);
        c.advance(2.25);
        assert_eq!(c.now(), 2.25);
        c.advance(0.75);
        assert_eq!(c.now(), 3.0);
        assert_eq!(c.kind(), "manual");
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a >= 0.0);
        assert_eq!(c.kind(), "wall");
    }

    #[test]
    fn fork_restarts_tick_clocks_at_zero() {
        let c = Clock::tick(1.0);
        let _ = c.now();
        let _ = c.now();
        let f = c.fork();
        assert_eq!(f.now(), 0.0, "forked tick clock restarts");
        // The parent keeps its own count.
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn fork_copies_manual_reading() {
        let c = Clock::manual();
        c.advance(5.0);
        let f = c.fork();
        assert_eq!(f.now(), 5.0);
        f.advance(1.0);
        assert_eq!(f.now(), 6.0);
        assert_eq!(c.now(), 5.0, "advancing the fork leaves the parent");
    }

    #[test]
    fn advance_on_non_manual_clocks_is_a_no_op() {
        let c = Clock::tick(1.0);
        c.advance(100.0);
        assert_eq!(c.now(), 0.0);
    }
}
