//! Hand-rolled JSON: a deterministic writer and a minimal parser.
//!
//! The workspace is hermetic (no registry access), so the telemetry
//! sinks cannot use `serde`. Writing JSON by hand is easy; this module
//! also carries a small recursive-descent parser so tests and smoke
//! checks can assert that every sink emits *valid* JSON without
//! shelling out to an external validator.
//!
//! Determinism notes: objects are emitted from `BTreeMap`s (sorted key
//! order), floats are formatted with Rust's shortest-roundtrip `Display`
//! (identical on every platform), and non-finite floats serialize as
//! `null` (JSON has no NaN/Inf).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A scalar recorded in telemetry fields, metrics, and report entries.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counters, indices, cycle stamps).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement; non-finite values serialize as `null`.
    F64(f64),
    /// Text.
    Str(String),
}

impl Value {
    /// Appends the JSON encoding of this value to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_f64(out, *v),
            Value::Str(s) => write_str(out, s),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Appends a JSON number for `v`, or `null` when `v` is not finite.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `Display` prints integral floats without a decimal point
        // ("1"), which is a valid JSON number; nothing more to do.
    } else {
        out.push_str("null");
    }
}

/// Appends a JSON string literal for `s` (quotes, escapes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON object from sorted `(key, value)` entries.
pub fn write_obj(out: &mut String, entries: &BTreeMap<String, Value>) {
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

/// A parsed JSON document (used by tests and CI smoke validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Appends the JSON encoding of this document to `out` (compact,
    /// sorted keys, non-finite numbers as `null` — the same conventions
    /// as the [`Value`] writer, so writer output always re-parses).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// The compact JSON text of this document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Looks up `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number when this is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The text when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(&b) if b == want => {
            *pos += 1;
            Ok(())
        }
        Some(&b) => Err(format!(
            "expected `{}` at byte {}, found `{}`",
            want as char, *pos, b as char
        )),
        None => Err(format!("expected `{}` at end of input", want as char)),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    let end = *pos + lit.len();
    if bytes.get(*pos..end) == Some(lit.as_bytes()) {
        *pos = end;
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default()).unwrap_or_default();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not needed by our own
                        // writer; map them to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe: copy raw
                // bytes up to the next scalar boundary).
                let rest = bytes.get(*pos..).unwrap_or_default();
                let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8 in string")?;
                if let Some(c) = text.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                } else {
                    return Err("unterminated string".to_owned());
                }
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = String::new();
        Value::Bool(true).write_json(&mut out);
        out.push(' ');
        Value::U64(42).write_json(&mut out);
        out.push(' ');
        Value::I64(-7).write_json(&mut out);
        out.push(' ');
        Value::F64(1.5).write_json(&mut out);
        assert_eq!(out, "true 42 -7 1.5");
    }

    #[test]
    fn integral_floats_print_as_plain_numbers() {
        let mut out = String::new();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3");
        assert!(matches!(parse("3"), Ok(Json::Num(_))));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        out.push(' ');
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(
            parse(&out).and_then(|j| j.as_str().map(str::to_owned).ok_or_else(String::new)),
            Ok("a\"b\\c\nd\te\u{1}".to_owned())
        );
    }

    #[test]
    fn objects_emit_sorted_keys() {
        let mut m = BTreeMap::new();
        m.insert("zeta".to_owned(), Value::U64(1));
        m.insert("alpha".to_owned(), Value::Bool(false));
        let mut out = String::new();
        write_obj(&mut out, &m);
        assert_eq!(out, "{\"alpha\":false,\"zeta\":1}");
    }

    #[test]
    fn parser_accepts_nested_documents() {
        let doc = parse("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\",\"d\":true}").expect("valid");
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err(), "trailing garbage must fail");
        assert!(parse("nul").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parser_handles_unicode_and_escapes() {
        let doc = parse("\"caf\u{e9} \\u00e9 ok\"").expect("valid");
        assert_eq!(doc.as_str(), Some("caf\u{e9} \u{e9} ok"));
    }

    #[test]
    fn writer_output_always_parses() {
        let mut m = BTreeMap::new();
        m.insert("nan".to_owned(), Value::F64(f64::NAN));
        m.insert("text".to_owned(), Value::Str("line1\nline2".to_owned()));
        m.insert("n".to_owned(), Value::I64(i64::MIN));
        let mut out = String::new();
        write_obj(&mut out, &m);
        assert!(parse(&out).is_ok(), "writer emitted invalid JSON: {out}");
    }
}
