//! Rate-limited progress reporting for long sweeps.
//!
//! The limiter is deterministic in *count* by default: one line is
//! written to stderr at every decile of `total`. Ticks arrive from
//! parallel workers; the atomic counter hands each decile boundary to
//! exactly one worker, so the *set* of lines printed is identical at
//! any thread count (their interleaving on stderr is not, which is why
//! progress goes to stderr and is excluded from the bit-identity
//! contract that the file sinks honour).
//!
//! An optional [`Clock`] adds time-based rate limiting on top: decile
//! lines closer together than `min_interval_s` are suppressed (the
//! final line always prints). Because the clock is the [`Clock`]
//! abstraction rather than the wall clock directly, the limiter is
//! unit-testable with [`Clock::manual`] — the `det-time` lint keeps
//! `Instant` itself fenced inside [`crate::clock`].

use crate::clock::Clock;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts completed work items and reports deciles to stderr.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    label: String,
    total: u64,
    stride: u64,
    done: AtomicU64,
    /// Time source for rate limiting; `None` = count-based only.
    clock: Option<Clock>,
    min_interval_s: f64,
    /// Reading (seconds, as `f64` bits) of the last printed line.
    last_print: AtomicU64,
}

impl Default for Progress {
    fn default() -> Self {
        Progress::disabled()
    }
}

impl Progress {
    /// A silent progress sink.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            label: String::new(),
            total: 0,
            stride: 1,
            done: AtomicU64::new(0),
            clock: None,
            min_interval_s: 0.0,
            last_print: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// A reporting progress sink over `total` work items.
    pub fn enabled(label: &str, total: u64) -> Self {
        Self {
            enabled: true,
            label: label.to_owned(),
            total,
            stride: (total / 10).max(1),
            done: AtomicU64::new(0),
            clock: None,
            min_interval_s: 0.0,
            last_print: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// [`Progress::enabled`] with time-based rate limiting: decile
    /// lines are additionally suppressed unless at least
    /// `min_interval_s` seconds (by `clock`) have passed since the last
    /// printed line. The 100% line always prints.
    pub fn enabled_with_clock(label: &str, total: u64, clock: Clock, min_interval_s: f64) -> Self {
        Self {
            clock: Some(clock),
            min_interval_s,
            ..Self::enabled(label, total)
        }
    }

    /// Whether ticks produce output.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Work items completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Whether the rate limiter lets a line print now. Only consulted
    /// at decile boundaries, so the per-tick hot path reads no clock.
    fn rate_limit_allows(&self, is_final: bool) -> bool {
        let Some(clock) = &self.clock else {
            return true;
        };
        if is_final {
            return true;
        }
        let now = clock.now();
        let last = f64::from_bits(self.last_print.load(Ordering::Relaxed));
        if now - last >= self.min_interval_s {
            self.last_print.store(now.to_bits(), Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Records one completed work item; prints a decile line when this
    /// tick crosses a boundary (and the rate limiter allows it). Safe
    /// to call from parallel workers.
    pub fn tick(&self) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(self.stride) || done == self.total {
            if !self.rate_limit_allows(done == self.total) {
                return;
            }
            let pct = (done * 100).checked_div(self.total).unwrap_or(100);
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "srlr: {} {done}/{} ({pct}%)", self.label, self.total);
        }
    }

    /// How many of the next `n` ticks would print, without printing.
    /// Test hook for the limiter (stderr itself is not captured).
    pub fn dry_run(&self, n: u64) -> u64 {
        if !self.enabled {
            return 0;
        }
        let mut printed = 0;
        for _ in 0..n {
            let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
            if (done.is_multiple_of(self.stride) || done == self.total)
                && self.rate_limit_allows(done == self.total)
            {
                printed += 1;
            }
        }
        printed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_progress_counts_nothing() {
        let p = Progress::disabled();
        p.tick();
        p.tick();
        assert!(!p.is_enabled());
        assert_eq!(p.done(), 0);
        assert_eq!(p.dry_run(10), 0);
    }

    #[test]
    fn enabled_progress_counts_ticks() {
        let p = Progress::enabled("trials", 25);
        for _ in 0..25 {
            p.tick();
        }
        assert!(p.is_enabled());
        assert_eq!(p.done(), 25);
    }

    #[test]
    fn tiny_totals_do_not_divide_by_zero() {
        let p = Progress::enabled("x", 0);
        p.tick();
        let p = Progress::enabled("y", 1);
        p.tick();
        assert_eq!(p.done(), 1);
    }

    #[test]
    fn without_a_clock_every_decile_prints() {
        let p = Progress::enabled("x", 100);
        assert_eq!(p.dry_run(100), 10, "one line per decile");
    }

    #[test]
    fn frozen_clock_suppresses_all_but_first_and_final() {
        // A manual clock that never advances: only the first decile
        // (limiter opens at -inf) and the forced 100% line print.
        let p = Progress::enabled_with_clock("x", 100, Clock::manual(), 5.0);
        assert_eq!(p.dry_run(100), 2);
    }

    #[test]
    fn advancing_clock_reopens_the_limiter() {
        let clock = Clock::manual();
        let p = Progress::enabled_with_clock("x", 100, clock, 5.0);
        assert_eq!(p.dry_run(10), 1, "10%: limiter opens");
        assert_eq!(p.dry_run(10), 0, "20%: suppressed, no time passed");
        if let Some(c) = &p.clock {
            c.advance(5.0);
        }
        assert_eq!(p.dry_run(10), 1, "30%: interval elapsed");
        assert_eq!(p.dry_run(10), 0, "40%: suppressed again");
    }

    #[test]
    fn final_line_prints_even_when_rate_limited() {
        let p = Progress::enabled_with_clock("x", 20, Clock::manual(), 1e9);
        let printed = p.dry_run(20);
        assert_eq!(printed, 2, "first decile + forced 100% line");
        assert_eq!(p.done(), 20);
    }

    #[test]
    fn zero_interval_never_suppresses() {
        let p = Progress::enabled_with_clock("x", 50, Clock::manual(), 0.0);
        assert_eq!(p.dry_run(50), 10);
    }
}
