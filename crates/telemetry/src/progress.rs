//! Rate-limited progress reporting for long sweeps.
//!
//! The limiter is deterministic in *count*, not wall clock (which the
//! workspace's `det-time` lint reserves for the `crates/criterion`
//! shim): one line is written to stderr at every decile of `total`.
//! Ticks arrive from parallel workers; the atomic counter hands each
//! decile boundary to exactly one worker, so the *set* of lines printed
//! is identical at any thread count (their interleaving on stderr is
//! not, which is why progress goes to stderr and is excluded from the
//! bit-identity contract that the file sinks honour).

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts completed work items and reports deciles to stderr.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    label: String,
    total: u64,
    stride: u64,
    done: AtomicU64,
}

impl Default for Progress {
    fn default() -> Self {
        Progress::disabled()
    }
}

impl Progress {
    /// A silent progress sink.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            label: String::new(),
            total: 0,
            stride: 1,
            done: AtomicU64::new(0),
        }
    }

    /// A reporting progress sink over `total` work items.
    pub fn enabled(label: &str, total: u64) -> Self {
        Self {
            enabled: true,
            label: label.to_owned(),
            total,
            stride: (total / 10).max(1),
            done: AtomicU64::new(0),
        }
    }

    /// Whether ticks produce output.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Work items completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Records one completed work item; prints a decile line when this
    /// tick crosses a boundary. Safe to call from parallel workers.
    pub fn tick(&self) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(self.stride) || done == self.total {
            let pct = (done * 100).checked_div(self.total).unwrap_or(100);
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "srlr: {} {done}/{} ({pct}%)", self.label, self.total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_progress_counts_nothing() {
        let p = Progress::disabled();
        p.tick();
        p.tick();
        assert!(!p.is_enabled());
        assert_eq!(p.done(), 0);
    }

    #[test]
    fn enabled_progress_counts_ticks() {
        let p = Progress::enabled("trials", 25);
        for _ in 0..25 {
            p.tick();
        }
        assert!(p.is_enabled());
        assert_eq!(p.done(), 25);
    }

    #[test]
    fn tiny_totals_do_not_divide_by_zero() {
        let p = Progress::enabled("x", 0);
        p.tick();
        let p = Progress::enabled("y", 1);
        p.tick();
        assert_eq!(p.done(), 1);
    }
}
