//! `srlr-telemetry`: deterministic, zero-cost-when-disabled telemetry.
//!
//! The reproduction's experiments are *measurements*, and measurements
//! need instruments. This crate is the workspace's instrumentation
//! layer: structured events, spans, counters, and scalar metrics
//! collected by a [`Collector`] and drained through three sinks —
//!
//! 1. a JSONL structured-event stream
//!    ([`Collector::write_events_jsonl`]),
//! 2. a Chrome `trace_event` span export loadable in Perfetto /
//!    `chrome://tracing` ([`Collector::write_chrome_trace`]), and
//! 3. a versioned machine-readable JSON run report ([`RunReport`])
//!    emitted by bench harnesses and CLI subcommands alongside their
//!    ASCII output.
//!
//! All JSON is hand-rolled ([`json`]) — the workspace is hermetic and
//! carries no serde.
//!
//! # Invariants (enforced by `srlr-lint` and the crate's tests)
//!
//! * **Zero cost when disabled.** A disabled [`Collector`] is one
//!   `None`; every record method is a branch that returns without
//!   allocating. Instrumented hot loops are free when telemetry is off.
//! * **Simulated time only.** Timestamps are cycles, trial indices, or
//!   simulated picoseconds — never the wall clock (`det-time` reserves
//!   that for the `crates/criterion` shim and this crate's [`clock`]
//!   module, where profiling fences it behind the [`Clock`]
//!   abstraction).
//! * **Bit-identical at any worker count.** Parallel stages record into
//!   per-item [`Collector::child`] collectors merged back in item-index
//!   order, mirroring `par_map_indexed`; spans carry their item index.
//!   Every file sink's bytes are identical at `--threads 1/2/8`.
//! * **Deterministic iteration.** All key/value state lives in
//!   `BTreeMap`s; sinks emit sorted-key order.

pub mod clock;
pub mod collect;
pub mod json;
pub mod profile;
pub mod progress;
pub mod report;
pub mod sarif;

pub use clock::Clock;
pub use collect::{Collector, Event, Span};
pub use json::{Json, Value};
pub use profile::{Profile, ProfileNode, Profiler, PROFILE_VERSION};
pub use progress::Progress;
pub use report::{RunReport, RUN_REPORT_VERSION};
pub use sarif::SarifDoc;

/// The observability hooks an experiment accepts: a collector for the
/// file sinks, a progress reporter, and a call-tree profiler (the
/// timing sink). [`Obs::none`] (the default) is free — instrumented
/// code branches on it and does no work.
#[derive(Debug, Default)]
pub struct Obs {
    /// Structured event/metric collector (drained by the caller).
    pub collector: Collector,
    /// Progress reporting to stderr.
    pub progress: Progress,
    /// Span-hierarchy profiler; its timings stay in the profile sink,
    /// excluded from the byte-identity contract of the other sinks.
    pub profiler: Profiler,
}

impl Obs {
    /// No observability: all hooks disabled.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any hook is active (instrumented code may use this to
    /// skip to its untraced fast path).
    pub fn is_active(&self) -> bool {
        self.collector.is_enabled() || self.progress.is_enabled() || self.profiler.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_none_is_inactive() {
        let obs = Obs::none();
        assert!(!obs.is_active());
        assert!(!obs.collector.is_enabled());
        assert!(!obs.progress.is_enabled());
        assert!(!obs.profiler.is_enabled());
    }

    #[test]
    fn obs_with_any_hook_is_active() {
        let obs = Obs {
            collector: Collector::enabled("t"),
            ..Obs::default()
        };
        assert!(obs.is_active());
        let obs = Obs {
            progress: Progress::enabled("x", 10),
            ..Obs::default()
        };
        assert!(obs.is_active());
        let obs = Obs {
            profiler: Profiler::enabled(Clock::tick(1.0)),
            ..Obs::default()
        };
        assert!(obs.is_active());
    }
}
