//! Versioned machine-readable run reports.
//!
//! Bench harnesses and CLI subcommands emit one [`RunReport`] per run
//! alongside their ASCII output, so downstream tooling (regression
//! dashboards, the CI smoke job) can consume results without scraping
//! text. The schema is versioned by [`RUN_REPORT_VERSION`]; consumers
//! must reject reports with a version they do not understand.

use crate::collect::Collector;
use crate::json::{write_str, Value};
use std::collections::BTreeMap;
use std::io;

/// Version of the run-report JSON schema.
///
/// Schema v1:
///
/// ```json
/// {
///   "srlr_run_report_version": 1,
///   "name": "<experiment>",
///   "params": { "<k>": <scalar> },
///   "metrics": { "<k>": <scalar> },
///   "sections": { "<section>": { "<k>": <scalar> } }
/// }
/// ```
pub const RUN_REPORT_VERSION: u32 = 1;

/// A versioned, machine-readable summary of one experiment run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    name: String,
    params: BTreeMap<String, Value>,
    metrics: BTreeMap<String, Value>,
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

impl RunReport {
    /// A fresh report for the named experiment.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// The experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one input parameter.
    pub fn param(&mut self, key: &str, value: Value) {
        self.params.insert(key.to_owned(), value);
    }

    /// Records one top-level result metric.
    pub fn metric(&mut self, key: &str, value: Value) {
        self.metrics.insert(key.to_owned(), value);
    }

    /// Records one metric under a named section (e.g. one sweep point).
    pub fn section_metric(&mut self, section: &str, key: &str, value: Value) {
        self.sections
            .entry(section.to_owned())
            .or_default()
            .insert(key.to_owned(), value);
    }

    /// The top-level metrics (for tests and consumers).
    pub fn metrics(&self) -> &BTreeMap<String, Value> {
        &self.metrics
    }

    /// Folds a collector's counters (as `counter.<name>`) and metrics
    /// into the top-level metrics.
    pub fn absorb_collector(&mut self, collector: &Collector) {
        for (k, &v) in collector.counters() {
            self.metrics.insert(format!("counter.{k}"), Value::U64(v));
        }
        for (k, v) in collector.metrics() {
            self.metrics.insert(k.clone(), v.clone());
        }
    }

    /// Renders the report as pretty-printed JSON (schema v1).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"srlr_run_report_version\": ");
        out.push_str(&RUN_REPORT_VERSION.to_string());
        out.push_str(",\n  \"name\": ");
        write_str(&mut out, &self.name);
        out.push_str(",\n  \"params\": ");
        write_flat_map(&mut out, &self.params, 2);
        out.push_str(",\n  \"metrics\": ");
        write_flat_map(&mut out, &self.metrics, 2);
        out.push_str(",\n  \"sections\": {");
        for (i, (section, entries)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_str(&mut out, section);
            out.push_str(": ");
            write_flat_map(&mut out, entries, 4);
        }
        if !self.sections.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes [`RunReport::to_json`] to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_json().as_bytes())
    }
}

/// Writes a one-entry-per-line JSON object at the given indent depth.
fn write_flat_map(out: &mut String, map: &BTreeMap<String, Value>, indent: usize) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    let pad = " ".repeat(indent + 2);
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&pad);
        write_str(out, k);
        out.push_str(": ");
        v.write_json(out);
    }
    out.push('\n');
    out.push_str(&" ".repeat(indent));
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn report_json_carries_version_and_parses() {
        let mut r = RunReport::new("fig6_monte_carlo");
        r.param("runs", Value::U64(1000));
        r.param("swing_mv", Value::F64(120.0));
        r.metric("error_probability", Value::F64(1e-3));
        r.section_metric("point.000", "swing_mv", Value::F64(80.0));
        r.section_metric("point.000", "failures", Value::U64(3));
        let doc = parse(&r.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("srlr_run_report_version").and_then(Json::as_num),
            Some(f64::from(RUN_REPORT_VERSION))
        );
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("fig6_monte_carlo")
        );
        assert_eq!(
            doc.get("params")
                .and_then(|p| p.get("runs"))
                .and_then(Json::as_num),
            Some(1000.0)
        );
        assert_eq!(
            doc.get("sections")
                .and_then(|s| s.get("point.000"))
                .and_then(|p| p.get("failures"))
                .and_then(Json::as_num),
            Some(3.0)
        );
    }

    #[test]
    fn empty_report_is_valid() {
        let doc = parse(&RunReport::new("empty").to_json()).expect("valid JSON");
        assert!(matches!(doc.get("metrics"), Some(Json::Obj(m)) if m.is_empty()));
        assert!(matches!(doc.get("sections"), Some(Json::Obj(m)) if m.is_empty()));
    }

    #[test]
    fn absorb_collector_prefixes_counters() {
        let mut c = Collector::enabled("t");
        c.add("retries", 4);
        c.set_metric("delivered_fraction", Value::F64(0.99));
        let mut r = RunReport::new("x");
        r.absorb_collector(&c);
        assert_eq!(r.metrics().get("counter.retries"), Some(&Value::U64(4)));
        assert_eq!(
            r.metrics().get("delivered_fraction"),
            Some(&Value::F64(0.99))
        );
    }
}
