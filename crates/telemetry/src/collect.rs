//! The telemetry collector: events, spans, counters, metrics.
//!
//! # Zero cost when disabled
//!
//! A disabled [`Collector`] is a single `None` — every record method is
//! one branch and returns without allocating, so instrumented hot loops
//! pay nothing when telemetry is off (asserted by the crate's
//! counting-allocator test).
//!
//! # Determinism
//!
//! Timestamps are **simulated or logical time** (cycles, trial indices,
//! simulated picoseconds) — never the wall clock, which only the
//! `crates/criterion` shim may read. Parallel workers record into
//! per-item [`Collector::child`] collectors that the coordinator merges
//! back in item-index order (mirroring `par_map_indexed`), so the byte
//! stream every sink produces is identical at 1, 2, or 8 workers.

use crate::json::{write_obj, write_str, Value};
use std::collections::BTreeMap;
use std::io;

/// A structured instant event stamped with simulated/logical time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name, e.g. `"flit.inject"`.
    pub name: String,
    /// Timestamp in the collector's timebase.
    pub ts: f64,
    /// Ordered key/value payload.
    pub fields: BTreeMap<String, Value>,
}

/// A completed span: a named interval in the collector's timebase.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name, e.g. `"trial"`.
    pub name: String,
    /// Category (Chrome trace `cat`), e.g. `"mc"`.
    pub cat: String,
    /// Start timestamp in the collector's timebase.
    pub ts: f64,
    /// Duration in the collector's timebase.
    pub dur: f64,
    /// Track (Chrome trace `tid`) the span renders on.
    pub track: u64,
    /// Ordered key/value payload (always carries the item index for
    /// parallel work, which is what makes the merged stream ordered).
    pub args: BTreeMap<String, Value>,
}

#[derive(Debug, Clone, Default)]
struct Inner {
    timebase: String,
    events: Vec<Event>,
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    metrics: BTreeMap<String, Value>,
}

/// Collects structured telemetry; free when disabled.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Option<Box<Inner>>,
}

fn to_map(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
    pairs
        .iter()
        .map(|(k, v)| ((*k).to_owned(), v.clone()))
        .collect()
}

impl Collector {
    /// A disabled collector: every record call is a no-op branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled collector whose timestamps are in `timebase` (e.g.
    /// `"cycles"`, `"trial-index"`, `"sim-ps"`).
    pub fn enabled(timebase: &str) -> Self {
        Self {
            inner: Some(Box::new(Inner {
                timebase: timebase.to_owned(),
                ..Inner::default()
            })),
        }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The timebase label (empty when disabled).
    pub fn timebase(&self) -> &str {
        self.inner.as_ref().map_or("", |i| &i.timebase)
    }

    /// A fresh collector with the same enablement and timebase, for one
    /// parallel work item. Merge children back in item-index order with
    /// [`Collector::merge`].
    pub fn child(&self) -> Collector {
        match &self.inner {
            None => Collector::disabled(),
            Some(i) => Collector::enabled(&i.timebase),
        }
    }

    /// Appends `other`'s events/spans and folds its counters/metrics in.
    /// Call in item-index order to keep the stream deterministic.
    pub fn merge(&mut self, other: Collector) {
        let (Some(dst), Some(src)) = (self.inner.as_mut(), other.inner) else {
            return;
        };
        dst.events.extend(src.events);
        dst.spans.extend(src.spans);
        for (k, v) in src.counters {
            *dst.counters.entry(k).or_insert(0) += v;
        }
        dst.metrics.extend(src.metrics);
    }

    /// Records an instant event.
    pub fn event(&mut self, name: &str, ts: f64, fields: &[(&str, Value)]) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.events.push(Event {
            name: name.to_owned(),
            ts,
            fields: to_map(fields),
        });
    }

    /// Records a completed span.
    pub fn span(
        &mut self,
        name: &str,
        cat: &str,
        ts: f64,
        dur: f64,
        track: u64,
        args: &[(&str, Value)],
    ) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.spans.push(Span {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ts,
            dur,
            track,
            args: to_map(args),
        });
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, counter: &str, delta: u64) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        *inner.counters.entry(counter.to_owned()).or_insert(0) += delta;
    }

    /// Sets a named scalar metric (last write wins).
    pub fn set_metric(&mut self, name: &str, value: Value) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.insert(name.to_owned(), value);
    }

    /// The recorded events (empty when disabled).
    pub fn events(&self) -> &[Event] {
        self.inner.as_ref().map_or(&[], |i| &i.events)
    }

    /// The recorded spans (empty when disabled).
    pub fn spans(&self) -> &[Span] {
        self.inner.as_ref().map_or(&[], |i| &i.spans)
    }

    /// The counters in sorted name order (empty when disabled).
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        static EMPTY: BTreeMap<String, u64> = BTreeMap::new();
        self.inner.as_ref().map_or(&EMPTY, |i| &i.counters)
    }

    /// The scalar metrics in sorted name order (empty when disabled).
    pub fn metrics(&self) -> &BTreeMap<String, Value> {
        static EMPTY: BTreeMap<String, Value> = BTreeMap::new();
        self.inner.as_ref().map_or(&EMPTY, |i| &i.metrics)
    }

    /// One counter's value (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters().get(name).copied().unwrap_or(0)
    }

    /// Writes the JSONL structured-event stream: one JSON object per
    /// line — events, then spans, then counters, then metrics, each in
    /// deterministic (record, then sorted-name) order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_events_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::new();
        for e in self.events() {
            line.clear();
            line.push_str("{\"type\":\"event\",\"name\":");
            write_str(&mut line, &e.name);
            line.push_str(",\"ts\":");
            crate::json::write_f64(&mut line, e.ts);
            line.push_str(",\"fields\":");
            write_obj(&mut line, &e.fields);
            line.push('}');
            writeln!(w, "{line}")?;
        }
        for s in self.spans() {
            line.clear();
            line.push_str("{\"type\":\"span\",\"name\":");
            write_str(&mut line, &s.name);
            line.push_str(",\"cat\":");
            write_str(&mut line, &s.cat);
            line.push_str(",\"ts\":");
            crate::json::write_f64(&mut line, s.ts);
            line.push_str(",\"dur\":");
            crate::json::write_f64(&mut line, s.dur);
            line.push_str(",\"track\":");
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{}", s.track));
            line.push_str(",\"args\":");
            write_obj(&mut line, &s.args);
            line.push('}');
            writeln!(w, "{line}")?;
        }
        for (name, value) in self.counters() {
            line.clear();
            line.push_str("{\"type\":\"counter\",\"name\":");
            write_str(&mut line, name);
            line.push_str(",\"value\":");
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{value}"));
            line.push('}');
            writeln!(w, "{line}")?;
        }
        for (name, value) in self.metrics() {
            line.clear();
            line.push_str("{\"type\":\"metric\",\"name\":");
            write_str(&mut line, name);
            line.push_str(",\"value\":");
            value.write_json(&mut line);
            line.push('}');
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Renders the Chrome `trace_event` JSON document (one `"X"`
    /// complete event per span, one `"i"` instant event per event),
    /// loadable in Perfetto / `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"timebase\":");
        write_str(&mut out, self.timebase());
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        for s in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_str(&mut out, &s.name);
            out.push_str(",\"cat\":");
            write_str(&mut out, &s.cat);
            out.push_str(",\"ph\":\"X\",\"ts\":");
            crate::json::write_f64(&mut out, s.ts);
            out.push_str(",\"dur\":");
            crate::json::write_f64(&mut out, s.dur);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(",\"pid\":0,\"tid\":{},\"args\":", s.track),
            );
            write_obj(&mut out, &s.args);
            out.push('}');
        }
        for e in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_str(&mut out, &e.name);
            out.push_str(",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"ts\":");
            crate::json::write_f64(&mut out, e.ts);
            out.push_str(",\"pid\":0,\"tid\":0,\"args\":");
            write_obj(&mut out, &e.fields);
            out.push('}');
        }
        if !self.counters().is_empty() {
            if !first {
                out.push(',');
            }
            out.push_str(
                "{\"name\":\"srlr.counters\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"g\",\
                 \"ts\":0,\"pid\":0,\"tid\":0,\"args\":",
            );
            let counters: BTreeMap<String, Value> = self
                .counters()
                .iter()
                .map(|(k, &v)| (k.clone(), Value::U64(v)))
                .collect();
            write_obj(&mut out, &counters);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes [`Collector::chrome_trace_json`] to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_chrome_trace<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.chrome_trace_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn sample() -> Collector {
        let mut c = Collector::enabled("cycles");
        c.event("flit.inject", 3.0, &[("packet", Value::U64(7))]);
        c.span("trial", "mc", 0.0, 1.0, 0, &[("trial", Value::U64(0))]);
        c.add("retries", 2);
        c.add("retries", 3);
        c.set_metric("delivered", Value::F64(0.5));
        c
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = Collector::disabled();
        c.event("e", 0.0, &[("k", Value::U64(1))]);
        c.span("s", "c", 0.0, 1.0, 0, &[]);
        c.add("n", 5);
        c.set_metric("m", Value::Bool(true));
        assert!(!c.is_enabled());
        assert!(c.events().is_empty() && c.spans().is_empty());
        assert!(c.counters().is_empty() && c.metrics().is_empty());
        assert_eq!(c.counter("n"), 0);
        assert_eq!(c.timebase(), "");
    }

    #[test]
    fn enabled_collector_accumulates() {
        let c = sample();
        assert_eq!(c.events().len(), 1);
        assert_eq!(c.spans().len(), 1);
        assert_eq!(c.counter("retries"), 5);
        assert_eq!(c.metrics().get("delivered"), Some(&Value::F64(0.5)));
        assert_eq!(c.timebase(), "cycles");
    }

    #[test]
    fn children_inherit_enablement() {
        assert!(!Collector::disabled().child().is_enabled());
        let parent = Collector::enabled("trial-index");
        let child = parent.child();
        assert!(child.is_enabled());
        assert_eq!(child.timebase(), "trial-index");
    }

    #[test]
    fn merge_appends_in_call_order_and_sums_counters() {
        let mut root = Collector::enabled("t");
        for i in 0..3u64 {
            let mut c = root.child();
            c.span("item", "w", i as f64, 1.0, 0, &[("i", Value::U64(i))]);
            c.add("n", 1);
            root.merge(c);
        }
        let order: Vec<f64> = root.spans().iter().map(|s| s.ts).collect();
        assert_eq!(order, vec![0.0, 1.0, 2.0]);
        assert_eq!(root.counter("n"), 3);
    }

    #[test]
    fn merge_into_disabled_is_noop() {
        let mut root = Collector::disabled();
        let mut child = Collector::enabled("t");
        child.add("n", 1);
        root.merge(child);
        assert!(!root.is_enabled());
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let mut buf = Vec::new();
        sample().write_events_jsonl(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "event + span + counter + metric");
        for line in &lines {
            assert!(parse(line).is_ok(), "invalid JSONL line: {line}");
        }
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[1].contains("\"type\":\"span\""));
        assert!(lines[2].contains("\"retries\""));
        assert!(lines[2].contains("\"value\":5"));
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let doc = parse(&sample().chrome_trace_json()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // span + event + counters-metadata event.
        assert_eq!(events.len(), 3);
        let span = &events[0];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("name").and_then(Json::as_str), Some("trial"));
        assert!(span.get("ts").and_then(Json::as_num).is_some());
        assert!(span.get("dur").and_then(Json::as_num).is_some());
        let instant = &events[1];
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("timebase"))
                .and_then(Json::as_str),
            Some("cycles")
        );
    }

    #[test]
    fn empty_enabled_collector_emits_empty_but_valid_sinks() {
        let c = Collector::enabled("t");
        let doc = parse(&c.chrome_trace_json()).expect("valid");
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        let mut buf = Vec::new();
        c.write_events_jsonl(&mut buf).expect("write");
        assert!(buf.is_empty());
    }
}
