//! Property test: the hand-rolled JSON writer and parser are inverses
//! over generated document trees.
//!
//! The workspace carries no proptest; a seeded xorshift generator
//! (pure function of the seed, so failures replay exactly) builds
//! random nested [`Json`] trees biased toward the edge cases the
//! sinks actually hit — escape-heavy strings, integral floats,
//! subnormals, deep nesting, empty containers — and asserts
//! `parse(write(doc)) == doc` for every one of them.

use srlr_telemetry::json::{parse, write_f64, write_str};
use srlr_telemetry::{Json, Value};
use std::collections::BTreeMap;

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Characters the generator draws strings from: ASCII, everything the
/// writer escapes, multi-byte UTF-8, and an astral-plane scalar.
const STRING_ALPHABET: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{0}',
    '\u{1}',
    '\u{1f}',
    'é',
    '漢',
    '\u{10348}',
    '\u{fffd}',
];

fn gen_string(rng: &mut Rng) -> String {
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| STRING_ALPHABET[rng.below(STRING_ALPHABET.len() as u64) as usize])
        .collect()
}

/// Finite floats only: the writer maps non-finite to `null` by design,
/// which is intentionally not invertible (covered separately below).
fn gen_float(rng: &mut Rng) -> f64 {
    match rng.below(8) {
        0 => 0.0,
        1 => -0.0,
        2 => rng.below(1000) as f64, // integral: prints without a dot
        3 => -(rng.below(1000) as f64),
        4 => f64::MIN_POSITIVE / 2.0, // subnormal
        5 => f64::MAX,
        6 => 0.1 + rng.below(100) as f64 / 7.0,
        _ => {
            // Arbitrary finite bit pattern.
            let bits = rng.next() & !(0x7ff0_0000_0000_0000);
            f64::from_bits(bits)
        }
    }
}

fn gen_json(rng: &mut Rng, depth: u32) -> Json {
    let scalar_only = depth >= 4;
    match rng.below(if scalar_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => Json::Num(gen_float(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.below(4) as usize;
            Json::Arr((0..n).map(|_| gen_json(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.below(4) as usize;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(gen_string(rng), gen_json(rng, depth + 1));
            }
            Json::Obj(map)
        }
    }
}

#[test]
fn generated_trees_round_trip() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for case in 0..2000u32 {
        let doc = gen_json(&mut rng, 0);
        let text = doc.to_json();
        let back = parse(&text).unwrap_or_else(|e| {
            panic!("case {case}: writer emitted unparseable JSON: {e}\n{text}")
        });
        assert_eq!(back, doc, "case {case} diverged through {text}");
    }
}

#[test]
fn deep_nesting_round_trips() {
    // A worst-case chain deeper than the generator's cap.
    let mut doc = Json::Num(1.0);
    for _ in 0..64 {
        doc = Json::Arr(vec![doc]);
    }
    let text = doc.to_json();
    assert_eq!(parse(&text), Ok(doc));
}

#[test]
fn escape_heavy_strings_round_trip() {
    let nasty = "\"\\\n\r\t\u{0}\u{1f}/é漢\u{10348}";
    let doc = Json::Str(nasty.to_owned());
    assert_eq!(parse(&doc.to_json()), Ok(doc));
    // And through the scalar Value writer too.
    let mut out = String::new();
    write_str(&mut out, nasty);
    assert_eq!(parse(&out), Ok(Json::Str(nasty.to_owned())));
}

#[test]
fn float_edge_cases_round_trip_exactly() {
    for v in [
        0.0,
        -0.0,
        1.0,
        -1.0,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        f64::MIN_POSITIVE / 4.0,
        1e-308,
        1e308,
        std::f64::consts::PI,
        2.2250738585072014e-308,
    ] {
        let mut out = String::new();
        write_f64(&mut out, v);
        let back = parse(&out)
            .expect("valid number")
            .as_num()
            .expect("numeric");
        assert_eq!(
            back.to_bits(),
            v.to_bits(),
            "{v} reparsed as {back} via {out}"
        );
    }
}

#[test]
fn non_finite_floats_collapse_to_null_by_design() {
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut out = String::new();
        Value::F64(v).write_json(&mut out);
        assert_eq!(parse(&out), Ok(Json::Null));
        assert_eq!(parse(&Json::Num(v).to_json()), Ok(Json::Null));
    }
}

#[test]
fn generated_value_scalars_round_trip() {
    // The flat Value writer used by every sink, over the same edge
    // alphabet.
    let mut rng = Rng(0xfeed_beef_0000_0002);
    for _ in 0..500 {
        let (value, expect) = match rng.below(5) {
            0 => (Value::Bool(rng.below(2) == 0), None),
            1 => (Value::U64(rng.next()), None),
            2 => (Value::I64(rng.next() as i64), None),
            3 => {
                let f = gen_float(&mut rng);
                (Value::F64(f), Some(Json::Num(f)))
            }
            _ => {
                let s = gen_string(&mut rng);
                (Value::Str(s.clone()), Some(Json::Str(s)))
            }
        };
        let mut out = String::new();
        value.write_json(&mut out);
        let back = parse(&out).expect("valid");
        match (&value, expect) {
            (_, Some(want)) => match (back, want) {
                (Json::Num(b), Json::Num(w)) => assert_eq!(b.to_bits(), w.to_bits()),
                (b, w) => assert_eq!(b, w),
            },
            (Value::Bool(b), None) => assert_eq!(back, Json::Bool(*b)),
            (Value::U64(v), None) => assert_eq!(back, Json::Num(*v as f64)),
            (Value::I64(v), None) => assert_eq!(back, Json::Num(*v as f64)),
            _ => unreachable!(),
        }
    }
}
