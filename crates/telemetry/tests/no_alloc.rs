//! The zero-cost-when-disabled contract, asserted with a counting
//! allocator: recording into a disabled [`Collector`], ticking a
//! disabled [`Progress`], and profiling into a disabled [`Profiler`]
//! must perform **zero** heap allocations.

use srlr_telemetry::{Collector, Obs, Profiler, Progress, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_collector_never_allocates() {
    let mut c = Collector::disabled();
    let n = allocations_during(|| {
        for i in 0..10_000u64 {
            c.event("flit.inject", i as f64, &[("packet", Value::U64(i))]);
            c.span("trial", "mc", i as f64, 1.0, 0, &[("trial", Value::U64(i))]);
            c.add("retries", 1);
            c.set_metric("delivered", Value::U64(i));
            let child = c.child();
            c.merge(child);
        }
    });
    assert_eq!(n, 0, "disabled collector allocated {n} times");
}

#[test]
fn disabled_progress_never_allocates() {
    let p = Progress::disabled();
    let n = allocations_during(|| {
        for _ in 0..10_000 {
            p.tick();
        }
    });
    assert_eq!(n, 0, "disabled progress allocated {n} times");
}

#[test]
fn disabled_profiler_never_allocates() {
    let mut p = Profiler::disabled();
    let n = allocations_during(|| {
        for _ in 0..10_000u64 {
            p.enter("frame");
            p.count("tally");
            p.count_n("bulk", 7);
            p.exit();
            let child = p.child();
            p.merge(child);
        }
    });
    assert_eq!(n, 0, "disabled profiler allocated {n} times");
}

#[test]
fn obs_none_never_allocates_after_construction() {
    let mut obs = Obs::none();
    let n = allocations_during(|| {
        for i in 0..10_000u64 {
            assert!(!obs.is_active());
            obs.collector
                .event("e", i as f64, &[("k", Value::Bool(true))]);
            obs.progress.tick();
            obs.profiler.enter("frame");
            obs.profiler.exit();
        }
    });
    assert_eq!(n, 0, "Obs::none() allocated {n} times");
}

#[test]
fn enabled_collector_does_allocate_as_a_sanity_check() {
    // Guards against the counter itself being broken: the *enabled*
    // path must show up in the allocation count.
    let mut c = Collector::enabled("t");
    let n = allocations_during(|| {
        c.event("e", 0.0, &[("k", Value::U64(1))]);
    });
    assert!(n > 0, "counting allocator saw no allocations at all");
}
