//! Golden-file regression test pinning the VCD output format.
//!
//! External waveform viewers (GTKWave & friends) parse the header
//! byte-for-byte; an accidental change to the `$timescale`, `$var`
//! declarations, or value-change framing would silently break them.
//! If a format change is *intentional*, regenerate the golden file and
//! say so in the changelog.

use srlr_circuit::vcd::VcdExporter;
use srlr_circuit::Waveform;
use srlr_units::{TimeInterval, Voltage};

const GOLDEN: &str = include_str!("golden/two_signal.vcd");

fn wave(points: &[(f64, f64)]) -> Waveform {
    Waveform::from_samples(
        points
            .iter()
            .map(|&(ps, v)| (TimeInterval::from_picoseconds(ps), Voltage::from_volts(v))),
    )
}

fn two_signal_exporter() -> VcdExporter {
    let mut vcd = VcdExporter::new("srlr");
    vcd.add("a", &wave(&[(0.0, 0.0), (10.0, 0.8), (20.0, 0.4)]));
    vcd.add("b", &wave(&[(0.0, 0.55), (10.0, 0.1)]));
    vcd
}

#[test]
fn vcd_output_matches_golden_file() {
    assert_eq!(
        two_signal_exporter().render(),
        GOLDEN,
        "VCD output drifted from the pinned format; if intentional, \
         regenerate crates/circuit/tests/golden/two_signal.vcd"
    );
}

#[test]
fn golden_header_pins_timescale_and_declarations() {
    // Belt and braces: even if the golden file is regenerated, these
    // format anchors must survive.
    for anchor in [
        "$date srlr reproduction $end",
        "$version srlr-circuit vcd exporter $end",
        "$timescale 1 fs $end",
        "$scope module srlr $end",
        "$var real 64 ! a $end",
        "$upscope $end\n$enddefinitions $end",
    ] {
        assert!(
            GOLDEN.contains(anchor),
            "golden file lost anchor {anchor:?}"
        );
    }
}

#[test]
fn streaming_writer_reproduces_golden_file() {
    let mut buf = Vec::new();
    two_signal_exporter()
        .write_to(&mut buf)
        .expect("writing to a Vec cannot fail");
    assert_eq!(String::from_utf8(buf).expect("utf8"), GOLDEN);
}
