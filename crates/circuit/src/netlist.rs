//! Netlist construction: nodes, passives, MOSFETs and forced sources.

use crate::stimulus::Stimulus;
use srlr_tech::{Device, MosKind};
use srlr_units::{Capacitance, Resistance, Voltage};
use std::collections::BTreeMap;

/// Identifier of a circuit node.
///
/// `NodeId::GROUND` is the implicit 0 V reference; every other node is
/// created through [`Netlist::node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground reference node (always 0 V).
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node inside its netlist.
    pub fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A circuit element.
#[derive(Debug, Clone)]
pub(crate) enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        a: NodeId,
        b: NodeId,
        conductance: f64,
    },
    /// A MOSFET; `device` carries the model, sizing and any variation.
    Mosfet {
        kind: MosKind,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        device: Device,
    },
}

/// A source forcing one node to follow a [`Stimulus`].
#[derive(Debug, Clone)]
pub(crate) struct ForcedNode {
    pub node: NodeId,
    pub stimulus: Stimulus,
    pub label: String,
}

/// A circuit under construction.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    by_name: BTreeMap<String, NodeId>,
    /// Lumped capacitance to ground per node (farads).
    pub(crate) node_capacitance: Vec<f64>,
    pub(crate) elements: Vec<Element>,
    pub(crate) forced: Vec<ForcedNode>,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        let mut n = Self {
            names: Vec::new(),
            by_name: BTreeMap::new(),
            node_capacitance: Vec::new(),
            elements: Vec::new(),
            forced: Vec::new(),
        };
        let g = n.node("gnd");
        debug_assert_eq!(g, NodeId::GROUND);
        n
    }

    /// Creates (or returns the existing) node with the given name.
    ///
    /// Every node starts with a small parasitic capacitance to ground so
    /// that no node is ever massless — an unloaded node would make the
    /// integrator's `dV/dt = I/C` singular.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        // 10 aF parasitic floor.
        self.node_capacitance.push(1e-17);
        id
    }

    /// Creates a fresh anonymous node (unique auto-generated name).
    pub fn anon_node(&mut self) -> NodeId {
        let name = format!("_anon{}", self.names.len());
        self.node(&name)
    }

    /// Looks up a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of elements (resistors + transistors).
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Adds capacitance to ground at `node`.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is negative or the node is ground.
    pub fn add_capacitance(&mut self, node: NodeId, c: Capacitance) {
        assert!(c.farads() >= 0.0, "capacitance must be non-negative");
        assert_ne!(node, NodeId::GROUND, "cannot load the ground node");
        self.node_capacitance[node.0] += c.farads();
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not strictly positive, or if `a == b`.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, r: Resistance) {
        assert!(r.ohms() > 0.0, "resistance must be positive");
        assert_ne!(a, b, "resistor terminals must differ");
        self.elements.push(Element::Resistor {
            a,
            b,
            conductance: 1.0 / r.ohms(),
        });
    }

    /// Adds a MOSFET. The device's gate/drain/source junction capacitances
    /// are automatically lumped onto the corresponding nodes.
    ///
    /// # Panics
    ///
    /// Panics if drain and source are the same node.
    pub fn add_mosfet(&mut self, device: Device, drain: NodeId, gate: NodeId, source: NodeId) {
        assert_ne!(drain, source, "drain and source must differ");
        let kind = device.kind();
        if gate != NodeId::GROUND {
            self.node_capacitance[gate.0] += device.gate_capacitance().farads();
        }
        if drain != NodeId::GROUND {
            self.node_capacitance[drain.0] += device.drain_capacitance().farads();
        }
        if source != NodeId::GROUND {
            self.node_capacitance[source.0] += device.drain_capacitance().farads();
        }
        self.elements.push(Element::Mosfet {
            kind,
            drain,
            gate,
            source,
            device,
        });
    }

    /// Forces `node` to follow `stimulus` exactly (an ideal source).
    /// The charge the source injects is integrated for energy accounting
    /// under the given node's name.
    ///
    /// # Panics
    ///
    /// Panics if the node is ground or already forced.
    pub fn force(&mut self, node: NodeId, stimulus: Stimulus) {
        assert_ne!(node, NodeId::GROUND, "ground is already forced to 0 V");
        assert!(
            self.forced.iter().all(|f| f.node != node),
            "node {} is already forced",
            self.node_name(node)
        );
        let label = self.node_name(node).to_owned();
        self.forced.push(ForcedNode {
            node,
            stimulus,
            label,
        });
    }

    /// Convenience: creates a node named `name` held at a constant voltage
    /// (e.g. a supply rail) and returns it.
    pub fn rail(&mut self, name: &str, v: Voltage) -> NodeId {
        let id = self.node(name);
        self.force(id, Stimulus::dc(v));
        id
    }

    /// Total lumped capacitance at a node (parasitics included).
    pub fn capacitance_at(&self, node: NodeId) -> Capacitance {
        Capacitance::from_farads(self.node_capacitance[node.0])
    }

    /// The stiffest (smallest) resistive time constant in the netlist,
    /// used by the integrator to bound its step size. Returns `None` when
    /// there are no resistors.
    pub(crate) fn min_resistive_tau(&self) -> Option<f64> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                Element::Resistor { a, b, conductance } => {
                    let ca = self.node_capacitance[a.0];
                    let cb = self.node_capacitance[b.0];
                    // The smaller node capacitance governs stiffness.
                    Some(ca.min(cb) / conductance)
                }
                Element::Mosfet { .. } => None,
            })
            .min_by(|x, y| x.total_cmp(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_tech::MosfetModel;
    use srlr_units::Length;

    #[test]
    fn ground_exists_and_is_node_zero() {
        let net = Netlist::new();
        assert_eq!(net.find_node("gnd"), Some(NodeId::GROUND));
        assert_eq!(net.node_count(), 1);
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let again = net.node("a");
        assert_eq!(a, again);
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.node_name(a), "a");
    }

    #[test]
    fn anon_nodes_are_unique() {
        let mut net = Netlist::new();
        let a = net.anon_node();
        let b = net.anon_node();
        assert_ne!(a, b);
    }

    #[test]
    fn capacitance_accumulates() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_capacitance(a, Capacitance::from_femtofarads(10.0));
        net.add_capacitance(a, Capacitance::from_femtofarads(5.0));
        // 15 fF added on top of the 0.01 fF parasitic floor.
        assert!((net.capacitance_at(a).femtofarads() - 15.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn loading_ground_is_rejected() {
        let mut net = Netlist::new();
        net.add_capacitance(NodeId::GROUND, Capacitance::from_femtofarads(1.0));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_resistor_rejected() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_resistor(a, a, Resistance::from_ohms(100.0));
    }

    #[test]
    #[should_panic(expected = "already forced")]
    fn double_force_rejected() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.force(a, Stimulus::dc(Voltage::from_volts(0.8)));
        net.force(a, Stimulus::dc(Voltage::zero()));
    }

    #[test]
    fn mosfet_loads_terminal_nodes() {
        let mut net = Netlist::new();
        let d = net.node("d");
        let g = net.node("g");
        let s = net.node("s");
        let before = net.capacitance_at(g);
        let dev = Device::new(
            MosKind::Nmos,
            MosfetModel::nmos_soi45(),
            Length::from_micrometers(1.0),
            Length::from_nanometers(45.0),
        );
        net.add_mosfet(dev, d, g, s);
        assert!(net.capacitance_at(g) > before);
        assert_eq!(net.element_count(), 1);
    }

    #[test]
    fn min_tau_reflects_stiffest_pair() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.add_capacitance(a, Capacitance::from_femtofarads(100.0));
        net.add_capacitance(b, Capacitance::from_femtofarads(1.0));
        net.add_resistor(a, b, Resistance::from_kilohms(1.0));
        let tau = net.min_resistive_tau().expect("has a resistor");
        // ~1 fF * 1 kOhm = 1 ps (plus the tiny parasitic floor).
        assert!((tau - 1.01e-12).abs() < 0.05e-12, "tau = {tau}");
    }

    #[test]
    fn elaboration_node_order_is_reproducible() {
        // Regression guard for the HashMap -> BTreeMap switch: building
        // the same circuit twice must yield identical NodeId assignments
        // and identical name tables, independent of any per-process map
        // randomization.
        fn build() -> Netlist {
            let mut net = Netlist::new();
            for name in ["vdd", "in", "out", "mid", "sense"] {
                net.node(name);
            }
            let a = net.anon_node();
            let b = net.anon_node();
            net.add_resistor(a, b, Resistance::from_kilohms(2.0));
            net
        }
        let first = build();
        let second = build();
        assert_eq!(first.names, second.names);
        for name in ["vdd", "in", "out", "mid", "sense", "_anon6"] {
            assert_eq!(first.find_node(name), second.find_node(name), "{name}");
        }
    }

    #[test]
    fn rail_is_forced() {
        let mut net = Netlist::new();
        let vdd = net.rail("vdd", Voltage::from_volts(0.8));
        assert_eq!(net.node_name(vdd), "vdd");
        assert_eq!(net.forced.len(), 1);
    }
}
