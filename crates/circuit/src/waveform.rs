//! Recorded waveforms and measurements on them: crossings, pulse widths,
//! rise/fall times, peaks.

use srlr_units::{TimeInterval, Voltage};

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// The waveform crossed the threshold going up.
    Rising,
    /// The waveform crossed the threshold going down.
    Falling,
}

impl core::fmt::Display for Edge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Rising => f.write_str("rising"),
            Self::Falling => f.write_str("falling"),
        }
    }
}

/// A sampled voltage-versus-time record for one node.
///
/// Samples are stored as `(seconds, volts)` pairs in strictly increasing
/// time order; queries interpolate linearly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    samples: Vec<(f64, f64)>,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a waveform from `(time, voltage)` samples.
    ///
    /// # Panics
    ///
    /// Panics if times are not strictly increasing.
    pub fn from_samples<I>(samples: I) -> Self
    where
        I: IntoIterator<Item = (TimeInterval, Voltage)>,
    {
        let mut w = Self::new();
        for (t, v) in samples {
            w.push(t, v);
        }
        w
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not after the last recorded sample.
    pub fn push(&mut self, t: TimeInterval, v: Voltage) {
        let ts = t.seconds();
        if let Some(&(last, _)) = self.samples.last() {
            assert!(
                ts > last,
                "waveform samples must be strictly increasing in time"
            );
        }
        self.samples.push((ts, v.volts()));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> impl Iterator<Item = (TimeInterval, Voltage)> + '_ {
        self.samples
            .iter()
            .map(|&(t, v)| (TimeInterval::from_seconds(t), Voltage::from_volts(v)))
    }

    /// Linear interpolation of the waveform at `t`; clamps outside the
    /// recorded range.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn value_at(&self, t: TimeInterval) -> Voltage {
        assert!(!self.samples.is_empty(), "waveform has no samples");
        let ts = t.seconds();
        let s = &self.samples;
        if ts <= s[0].0 {
            return Voltage::from_volts(s[0].1);
        }
        if ts >= s[s.len() - 1].0 {
            return Voltage::from_volts(s[s.len() - 1].1);
        }
        let idx = s.partition_point(|&(pt, _)| pt <= ts);
        let (t0, v0) = s[idx - 1];
        let (t1, v1) = s[idx];
        Voltage::from_volts(v0 + (v1 - v0) * (ts - t0) / (t1 - t0))
    }

    /// The final sampled value.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn last_value(&self) -> Voltage {
        // srlr-lint: allow(no-panic, reason = "documented panic: API contract requires a non-empty waveform, see # Panics")
        let &(_, v) = self.samples.last().expect("waveform has no samples");
        Voltage::from_volts(v)
    }

    /// Maximum sampled voltage.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn peak(&self) -> Voltage {
        let v = self
            .samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(v.is_finite(), "waveform has no samples");
        Voltage::from_volts(v)
    }

    /// Minimum sampled voltage.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn valley(&self) -> Voltage {
        let v = self
            .samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert!(v.is_finite(), "waveform has no samples");
        Voltage::from_volts(v)
    }

    /// All crossings of `threshold`, as `(time, edge)` pairs, with the
    /// crossing time interpolated within the straddling segment.
    pub fn crossings(&self, threshold: Voltage) -> Vec<(TimeInterval, Edge)> {
        let th = threshold.volts();
        let mut out = Vec::new();
        for w in self.samples.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            let below0 = v0 < th;
            let below1 = v1 < th;
            if below0 == below1 {
                continue;
            }
            let frac = (th - v0) / (v1 - v0);
            let t = t0 + frac * (t1 - t0);
            let edge = if below0 { Edge::Rising } else { Edge::Falling };
            out.push((TimeInterval::from_seconds(t), edge));
        }
        out
    }

    /// Widths of all complete pulses above `threshold`
    /// (rising crossing followed by a falling crossing).
    pub fn pulse_widths(&self, threshold: Voltage) -> Vec<TimeInterval> {
        let mut widths = Vec::new();
        let mut rise: Option<TimeInterval> = None;
        for (t, edge) in self.crossings(threshold) {
            match edge {
                Edge::Rising => rise = Some(t),
                Edge::Falling => {
                    if let Some(r) = rise.take() {
                        widths.push(t - r);
                    }
                }
            }
        }
        widths
    }

    /// 10 %–90 % rise time of the first rising excursion between `low` and
    /// `high` reference levels. Returns `None` if the waveform never makes
    /// the excursion.
    pub fn rise_time(&self, low: Voltage, high: Voltage) -> Option<TimeInterval> {
        let lo_th = low + (high - low) * 0.1;
        let hi_th = low + (high - low) * 0.9;
        let lo_cross = self
            .crossings(lo_th)
            .into_iter()
            .find(|&(_, e)| e == Edge::Rising)?;
        let hi_cross = self
            .crossings(hi_th)
            .into_iter()
            .find(|&(t, e)| e == Edge::Rising && t > lo_cross.0)?;
        Some(hi_cross.0 - lo_cross.0)
    }

    /// 90 %–10 % fall time of the first falling excursion between the
    /// reference levels. Returns `None` if the waveform never falls through
    /// both references.
    pub fn fall_time(&self, low: Voltage, high: Voltage) -> Option<TimeInterval> {
        let lo_th = low + (high - low) * 0.1;
        let hi_th = low + (high - low) * 0.9;
        let hi_cross = self
            .crossings(hi_th)
            .into_iter()
            .find(|&(_, e)| e == Edge::Falling)?;
        let lo_cross = self
            .crossings(lo_th)
            .into_iter()
            .find(|&(t, e)| e == Edge::Falling && t > hi_cross.0)?;
        Some(lo_cross.0 - hi_cross.0)
    }

    /// Renders a fixed-width ASCII strip chart (for examples and debug
    /// output). `rows` vertical resolution, `cols` horizontal.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform or zero dimensions.
    pub fn ascii_plot(&self, rows: usize, cols: usize) -> String {
        assert!(!self.samples.is_empty(), "waveform has no samples");
        assert!(rows >= 2 && cols >= 2, "plot needs at least 2x2 cells");
        let t0 = self.samples[0].0;
        let t1 = self.samples[self.samples.len() - 1].0;
        let vmin = self.valley().volts();
        let vmax = self.peak().volts().max(vmin + 1e-12);
        let mut grid = vec![vec![b' '; cols]; rows];
        // The column index drives both the sampled time and the target
        // cell, so a plain range loop is the clearest form here.
        #[allow(clippy::needless_range_loop)]
        for col in 0..cols {
            let t = t0 + (t1 - t0) * col as f64 / (cols - 1) as f64;
            let v = self.value_at(TimeInterval::from_seconds(t)).volts();
            let frac = (v - vmin) / (vmax - vmin);
            let row = ((1.0 - frac) * (rows - 1) as f64).round() as usize;
            grid[row.min(rows - 1)][col] = b'*';
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{:>9.3} V |", vmax)
            } else if i == rows - 1 {
                format!("{:>9.3} V |", vmin)
            } else {
                format!("{:>11} |", "")
            };
            out.push_str(&label);
            out.push_str(&String::from_utf8_lossy(row));
            out.push('\n');
        }
        out
    }
}

impl FromIterator<(TimeInterval, Voltage)> for Waveform {
    fn from_iter<I: IntoIterator<Item = (TimeInterval, Voltage)>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0 V at t=0 to 1 V at t=1 ns, then back down to 0 at 2 ns.
        Waveform::from_samples([
            (TimeInterval::zero(), Voltage::zero()),
            (
                TimeInterval::from_nanoseconds(1.0),
                Voltage::from_volts(1.0),
            ),
            (TimeInterval::from_nanoseconds(2.0), Voltage::zero()),
        ])
    }

    #[test]
    fn interpolation_between_samples() {
        let w = ramp();
        let v = w.value_at(TimeInterval::from_picoseconds(250.0));
        assert!((v.volts() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clamping_outside_range() {
        let w = ramp();
        assert_eq!(w.value_at(TimeInterval::from_seconds(-1.0)).volts(), 0.0);
        assert_eq!(w.value_at(TimeInterval::from_seconds(10.0)).volts(), 0.0);
    }

    #[test]
    fn peak_and_valley() {
        let w = ramp();
        assert_eq!(w.peak().volts(), 1.0);
        assert_eq!(w.valley().volts(), 0.0);
    }

    #[test]
    fn crossings_detect_both_edges() {
        let w = ramp();
        let c = w.crossings(Voltage::from_volts(0.5));
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].1, Edge::Rising);
        assert_eq!(c[1].1, Edge::Falling);
        assert!((c[0].0.picoseconds() - 500.0).abs() < 1e-6);
        assert!((c[1].0.picoseconds() - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn pulse_width_of_triangle() {
        let w = ramp();
        let widths = w.pulse_widths(Voltage::from_volts(0.5));
        assert_eq!(widths.len(), 1);
        assert!((widths[0].nanoseconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_pulse_when_threshold_above_peak() {
        let w = ramp();
        assert!(w.pulse_widths(Voltage::from_volts(2.0)).is_empty());
    }

    #[test]
    fn rise_and_fall_times_of_triangle() {
        let w = ramp();
        let rt = w
            .rise_time(Voltage::zero(), Voltage::from_volts(1.0))
            .unwrap();
        // 10% to 90% of a linear 1 ns ramp = 0.8 ns.
        assert!((rt.nanoseconds() - 0.8).abs() < 1e-9);
        let ft = w
            .fall_time(Voltage::zero(), Voltage::from_volts(1.0))
            .unwrap();
        assert!((ft.nanoseconds() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn rise_time_none_when_never_rises() {
        let flat = Waveform::from_samples([
            (TimeInterval::zero(), Voltage::zero()),
            (TimeInterval::from_nanoseconds(1.0), Voltage::zero()),
        ]);
        assert!(flat
            .rise_time(Voltage::zero(), Voltage::from_volts(1.0))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_push_rejected() {
        let mut w = Waveform::new();
        w.push(TimeInterval::from_nanoseconds(1.0), Voltage::zero());
        w.push(TimeInterval::from_picoseconds(1.0), Voltage::zero());
    }

    #[test]
    fn ascii_plot_has_requested_shape() {
        let plot = ramp().ascii_plot(5, 40);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.len() > 40));
        assert!(plot.contains('*'));
    }

    #[test]
    fn collect_from_iterator() {
        let w: Waveform = (0..5)
            .map(|i| {
                (
                    TimeInterval::from_picoseconds(f64::from(i)),
                    Voltage::from_millivolts(f64::from(i * 100)),
                )
            })
            .collect();
        assert_eq!(w.len(), 5);
        assert_eq!(w.last_value(), Voltage::from_millivolts(400.0));
    }
}
