//! A small standard-cell library: parameterised inverters, buffers and
//! chains built onto a [`Netlist`], so higher-level circuit elaborations
//! (the SRLR's amplifier, pre-drivers and delay chains) come from one
//! place instead of hand-instantiated transistor pairs.

use crate::netlist::{Netlist, NodeId};
use srlr_tech::{Device, MosKind, MosfetModel};
use srlr_units::{Capacitance, Length};

/// Device models and defaults for one logic family instance.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    nmos: MosfetModel,
    pmos: MosfetModel,
    length: Length,
    vdd: NodeId,
}

impl CellLibrary {
    /// Creates a library from the two device models, the drawn channel
    /// length and the supply node the cells tie to.
    ///
    /// # Panics
    ///
    /// Panics if the length is not strictly positive.
    pub fn new(nmos: MosfetModel, pmos: MosfetModel, length: Length, vdd: NodeId) -> Self {
        assert!(length.meters() > 0.0, "channel length must be positive");
        Self {
            nmos,
            pmos,
            length,
            vdd,
        }
    }

    /// The supply node cells connect to.
    pub fn vdd(&self) -> NodeId {
        self.vdd
    }

    /// Adds a static CMOS inverter with the given device widths,
    /// creating (or reusing) the output node `out_name`.
    ///
    /// # Panics
    ///
    /// Panics if a width is not strictly positive.
    pub fn inverter(
        &self,
        net: &mut Netlist,
        input: NodeId,
        out_name: &str,
        wn: Length,
        wp: Length,
    ) -> NodeId {
        assert!(
            wn.meters() > 0.0 && wp.meters() > 0.0,
            "device widths must be positive"
        );
        let out = net.node(out_name);
        let n = Device::new(MosKind::Nmos, self.nmos, wn, self.length);
        let p = Device::new(MosKind::Pmos, self.pmos, wp, self.length);
        net.add_mosfet(n, out, input, NodeId::GROUND);
        net.add_mosfet(p, out, input, self.vdd);
        out
    }

    /// Adds a non-inverting buffer (two inverters) and returns its output.
    pub fn buffer(
        &self,
        net: &mut Netlist,
        input: NodeId,
        prefix: &str,
        wn: Length,
        wp: Length,
    ) -> NodeId {
        let mid = self.inverter(net, input, &format!("{prefix}.b0"), wn, wp);
        self.inverter(net, mid, &format!("{prefix}.b1"), wn, wp)
    }

    /// Adds a chain of `inverters` identical inverters, each loaded with
    /// `load` of extra capacitance (to hit a target per-stage delay), and
    /// returns the final output. Output polarity is inverted when
    /// `inverters` is odd.
    ///
    /// # Panics
    ///
    /// Panics if `inverters` is zero.
    // A cell generator naturally takes the full parameter set; a builder
    // would obscure the netlist-construction call sites.
    #[allow(clippy::too_many_arguments)]
    pub fn inverter_chain(
        &self,
        net: &mut Netlist,
        input: NodeId,
        inverters: usize,
        load: Capacitance,
        prefix: &str,
        wn: Length,
        wp: Length,
    ) -> NodeId {
        assert!(inverters > 0, "chain needs at least one inverter");
        let mut node = input;
        for k in 0..inverters {
            node = self.inverter(net, node, &format!("{prefix}.inv{k}"), wn, wp);
            net.add_capacitance(node, load);
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Transient;
    use crate::stimulus::Stimulus;
    use srlr_units::{Length, TimeInterval, Voltage};

    fn fixture() -> (Netlist, CellLibrary, NodeId) {
        let mut net = Netlist::new();
        let vdd = net.rail("vdd", Voltage::from_volts(0.8));
        let lib = CellLibrary::new(
            MosfetModel::nmos_soi45(),
            MosfetModel::pmos_soi45(),
            Length::from_nanometers(45.0),
            vdd,
        );
        let input = net.node("in");
        net.force(
            input,
            Stimulus::step(
                Voltage::zero(),
                Voltage::from_volts(0.8),
                TimeInterval::from_picoseconds(100.0),
            ),
        );
        (net, lib, input)
    }

    #[test]
    fn inverter_inverts() {
        let (mut net, lib, input) = fixture();
        let out = lib.inverter(
            &mut net,
            input,
            "out",
            Length::from_micrometers(0.3),
            Length::from_micrometers(0.6),
        );
        let r = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let w = r.waveform(out);
        assert!(w.value_at(TimeInterval::from_picoseconds(90.0)).volts() > 0.75);
        assert!(w.last_value().volts() < 0.05);
    }

    #[test]
    fn buffer_preserves_polarity() {
        let (mut net, lib, input) = fixture();
        let out = lib.buffer(
            &mut net,
            input,
            "buf",
            Length::from_micrometers(0.3),
            Length::from_micrometers(0.6),
        );
        let r = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let w = r.waveform(out);
        assert!(w.value_at(TimeInterval::from_picoseconds(90.0)).volts() < 0.05);
        assert!(w.last_value().volts() > 0.75);
    }

    #[test]
    fn chain_delay_grows_with_length() {
        let delay_of = |stages: usize| {
            let (mut net, lib, input) = fixture();
            let out = lib.inverter_chain(
                &mut net,
                input,
                stages,
                Capacitance::from_femtofarads(4.0),
                "dly",
                Length::from_micrometers(0.3),
                Length::from_micrometers(0.6),
            );
            let r = Transient::new(&net).run(TimeInterval::from_nanoseconds(2.0));
            // All nodes start at 0 V, so skip start-up settling and take
            // the rising edge caused by the input step at 100 ps.
            let crossings = r.waveform(out).crossings(Voltage::from_volts(0.4));
            crossings
                .into_iter()
                .filter(|&(t, e)| {
                    e == crate::waveform::Edge::Rising && t > TimeInterval::from_picoseconds(100.0)
                })
                .map(|(t, _)| t)
                .next()
                .expect("output switched after the input step")
        };
        let short = delay_of(2);
        let long = delay_of(8);
        assert!(
            (long - short).picoseconds() > 30.0,
            "8-stage chain should be much slower: {short} vs {long}"
        );
    }

    #[test]
    fn odd_chain_inverts_even_chain_does_not() {
        // The input settles high, so an odd chain ends low and an even
        // chain ends high.
        let final_value = |stages: usize| {
            let (mut net, lib, input) = fixture();
            let out = lib.inverter_chain(
                &mut net,
                input,
                stages,
                Capacitance::from_femtofarads(2.0),
                "c",
                Length::from_micrometers(0.3),
                Length::from_micrometers(0.6),
            );
            Transient::new(&net)
                .run(TimeInterval::from_nanoseconds(2.0))
                .waveform(out)
                .last_value()
        };
        assert!(final_value(3).volts() < 0.05, "odd chain must invert");
        assert!(final_value(4).volts() > 0.75, "even chain must not");
    }

    #[test]
    #[should_panic(expected = "at least one inverter")]
    fn empty_chain_rejected() {
        let (mut net, lib, input) = fixture();
        let _ = lib.inverter_chain(
            &mut net,
            input,
            0,
            Capacitance::zero(),
            "c",
            Length::from_micrometers(0.3),
            Length::from_micrometers(0.6),
        );
    }

    #[test]
    #[should_panic(expected = "widths must be positive")]
    fn zero_width_rejected() {
        let (mut net, lib, input) = fixture();
        let _ = lib.inverter(
            &mut net,
            input,
            "out",
            Length::zero(),
            Length::from_micrometers(0.6),
        );
    }
}
