//! The adaptive explicit transient integrator.

use crate::netlist::{Element, Netlist, NodeId};
use srlr_tech::MosKind;
use srlr_units::{Energy, TimeInterval, Voltage};
use std::collections::BTreeMap;

/// Transient simulation engine over a [`Netlist`].
///
/// Integration is explicit midpoint (RK2) with the step size adapted to a
/// per-step voltage-change target and hard-bounded by the stiffest
/// resistive time constant of the netlist. All nodes are recorded.
#[derive(Debug, Clone)]
pub struct Transient {
    net: Netlist,
    /// Target maximum |dV| per step.
    dv_target: f64,
    /// Hard bounds on the step size (seconds).
    dt_min: f64,
    dt_max: f64,
    /// Time resolution of the recorded waveforms (seconds).
    record_dt: f64,
}

impl Transient {
    /// Creates a simulator over (a clone of) the netlist with default
    /// tolerances: 2 mV per step, 1 fs–1 ps steps, 0.2 ps recording grid.
    pub fn new(net: &Netlist) -> Self {
        let stiffness_bound = net
            .min_resistive_tau()
            .map_or(1e-12, |tau| (0.5 * tau).clamp(1e-15, 1e-12));
        Self {
            net: net.clone(),
            dv_target: 2e-3,
            dt_min: 1e-15,
            dt_max: stiffness_bound,
            record_dt: 2e-13,
        }
    }

    /// Overrides the per-step voltage-change target (volts). Smaller is
    /// more accurate and slower.
    ///
    /// # Panics
    ///
    /// Panics if `dv` is not strictly positive.
    #[must_use]
    pub fn with_dv_target(mut self, dv: Voltage) -> Self {
        assert!(dv.volts() > 0.0, "dv target must be positive");
        self.dv_target = dv.volts();
        self
    }

    /// Overrides the waveform recording resolution.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    #[must_use]
    pub fn with_record_resolution(mut self, dt: TimeInterval) -> Self {
        assert!(dt.seconds() > 0.0, "record resolution must be positive");
        self.record_dt = dt.seconds();
        self
    }

    /// Runs the transient from all-zero initial node voltages for
    /// `duration`, recording every node.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive.
    pub fn run(&self, duration: TimeInterval) -> TransientResult {
        self.run_from(duration, &BTreeMap::new())
    }

    /// Runs the transient with explicit initial conditions for some nodes
    /// (all others start at 0 V, forced nodes start at their stimulus
    /// value).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive.
    pub fn run_from(
        &self,
        duration: TimeInterval,
        initial: &BTreeMap<NodeId, Voltage>,
    ) -> TransientResult {
        let t_end = duration.seconds();
        assert!(t_end > 0.0, "simulation duration must be positive");

        let n = self.net.node_count();
        let mut v = vec![0.0_f64; n];
        for (&node, &volt) in initial {
            v[node.index()] = volt.volts();
        }
        for f in &self.net.forced {
            v[f.node.index()] = f.stimulus.value_at_seconds(0.0);
        }
        v[NodeId::GROUND.index()] = 0.0;

        let forced_mask = {
            let mut mask = vec![false; n];
            mask[NodeId::GROUND.index()] = true;
            for f in &self.net.forced {
                mask[f.node.index()] = true;
            }
            mask
        };

        // Recording state.
        let n_records = (t_end / self.record_dt).ceil() as usize + 1;
        let mut records: Vec<Vec<(f64, f64)>> = vec![Vec::with_capacity(n_records.min(1 << 20)); n];
        let mut source_energy = vec![0.0_f64; self.net.forced.len()];
        let mut stats = TransientStats::default();

        let mut t = 0.0_f64;
        let mut next_record = 0.0_f64;
        let mut dt;
        let mut currents = vec![0.0_f64; n];
        let mut currents_mid = vec![0.0_f64; n];
        let mut v_mid = vec![0.0_f64; n];

        while t < t_end {
            // Record on the regular grid.
            if t >= next_record {
                for (i, rec) in records.iter_mut().enumerate() {
                    rec.push((t, v[i]));
                }
                next_record += self.record_dt;
                stats.records += 1;
            }

            self.eval_currents(&v, &mut currents);

            // Adapt dt to the fastest-moving free node.
            let mut max_rate = 0.0_f64;
            for i in 0..n {
                if forced_mask[i] {
                    continue;
                }
                let rate = (currents[i] / self.net.node_capacitance[i]).abs();
                max_rate = max_rate.max(rate);
            }
            if max_rate > 0.0 {
                let want = self.dv_target / max_rate;
                if want < self.dt_min {
                    stats.dv_target_missed += 1;
                } else if want > self.dt_max {
                    stats.dt_max_capped += 1;
                }
                dt = want.clamp(self.dt_min, self.dt_max);
            } else {
                stats.dt_max_capped += 1;
                dt = self.dt_max;
            }
            stats.steps += 1;
            stats.current_evals += 2;
            stats.dt_min_taken = stats.dt_min_taken.min(TimeInterval::from_seconds(dt));
            stats.dt_max_taken = stats.dt_max_taken.max(TimeInterval::from_seconds(dt));
            if t + dt > t_end {
                dt = t_end - t;
            }

            // Midpoint method: half-step predictor, full-step corrector.
            let half = 0.5 * dt;
            for i in 0..n {
                v_mid[i] = if forced_mask[i] {
                    v[i]
                } else {
                    v[i] + half * currents[i] / self.net.node_capacitance[i]
                };
            }
            self.apply_forced(t + half, &mut v_mid);
            self.eval_currents(&v_mid, &mut currents_mid);

            for i in 0..n {
                if !forced_mask[i] {
                    v[i] += dt * currents_mid[i] / self.net.node_capacitance[i];
                }
            }
            t += dt;
            self.apply_forced(t, &mut v);

            // Source energy: the current each source must supply equals the
            // negative of the element currents flowing into its node.
            for (si, f) in self.net.forced.iter().enumerate() {
                let supplied = -currents_mid[f.node.index()];
                source_energy[si] += supplied * v[f.node.index()] * dt;
            }
        }
        // Final record.
        for (i, rec) in records.iter_mut().enumerate() {
            rec.push((t, v[i]));
        }
        stats.records += 1;

        // Element-evaluation tallies are derivable after the fact (every
        // `eval_currents` call walks every element), so the hot loop pays
        // nothing for them.
        let (mut n_resistors, mut n_mosfets) = (0u64, 0u64);
        for e in &self.net.elements {
            match e {
                Element::Resistor { .. } => n_resistors += 1,
                Element::Mosfet { .. } => n_mosfets += 1,
            }
        }
        stats.resistor_evals = stats.current_evals * n_resistors;
        stats.mosfet_evals = stats.current_evals * n_mosfets;
        stats.element_evals = stats.resistor_evals + stats.mosfet_evals;

        TransientResult {
            records,
            source_labels: self.net.forced.iter().map(|f| f.label.clone()).collect(),
            source_energy,
            stats,
        }
    }

    fn apply_forced(&self, t: f64, v: &mut [f64]) {
        v[NodeId::GROUND.index()] = 0.0;
        for f in &self.net.forced {
            v[f.node.index()] = f.stimulus.value_at_seconds(t);
        }
    }

    /// Sums the element currents flowing *into* every node at the given
    /// node-voltage vector.
    fn eval_currents(&self, v: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for e in &self.net.elements {
            match e {
                Element::Resistor { a, b, conductance } => {
                    let i = (v[a.index()] - v[b.index()]) * conductance;
                    out[a.index()] -= i;
                    out[b.index()] += i;
                }
                Element::Mosfet {
                    kind,
                    drain,
                    gate,
                    source,
                    device,
                } => {
                    let vd = v[drain.index()];
                    let vg = v[gate.index()];
                    let vs = v[source.index()];
                    // Canonicalise terminal order: MOSFETs are symmetric.
                    let (hi, lo, hi_is_drain) = if vd >= vs {
                        (vd, vs, true)
                    } else {
                        (vs, vd, false)
                    };
                    let (vgs, vds) = match kind {
                        // NMOS conducts from the higher terminal to the
                        // lower; its effective source is the lower one.
                        MosKind::Nmos => (vg - lo, hi - lo),
                        // PMOS conducts when the gate is low relative to
                        // the higher terminal (its effective source).
                        MosKind::Pmos => (hi - vg, hi - lo),
                    };
                    let i = device
                        .drain_current(Voltage::from_volts(vgs), Voltage::from_volts(vds))
                        .amperes();
                    // Current flows from the higher terminal to the lower.
                    if hi_is_drain {
                        out[drain.index()] -= i;
                        out[source.index()] += i;
                    } else {
                        out[source.index()] -= i;
                        out[drain.index()] += i;
                    }
                }
            }
        }
    }
}

/// Step-control statistics for one transient run.
///
/// The integrator never *rejects* a step outright — it picks the step
/// size from the dv-per-step target first and only then applies the
/// `[dt_min, dt_max]` clamp — so the honest observability story is the
/// clamp tallies: [`TransientStats::dv_target_missed`] counts steps a
/// strict error controller would have rejected (the target demanded a
/// step below `dt_min`, so the realised |dV| overshot the target), and
/// [`TransientStats::dt_max_capped`] counts steps limited by the
/// stiffness bound rather than accuracy. Collecting these is a handful
/// of scalar updates per step; results are unchanged by observation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientStats {
    /// Integration steps taken.
    pub steps: u64,
    /// Steps where the dv-target step size fell below `dt_min` and was
    /// clamped up: the per-step |dV| target was *not* honoured.
    pub dv_target_missed: u64,
    /// Steps capped at `dt_max` by the stiffness bound (including
    /// quiescent steps where no node was moving).
    pub dt_max_capped: u64,
    /// Smallest step size the controller chose (before end-of-run
    /// truncation). Infinite when no steps ran.
    pub dt_min_taken: TimeInterval,
    /// Largest step size the controller chose.
    pub dt_max_taken: TimeInterval,
    /// Calls to the per-element current evaluation (two per step:
    /// predictor + corrector).
    pub current_evals: u64,
    /// Total element evaluations (`current_evals` × element count).
    pub element_evals: u64,
    /// Resistor evaluations.
    pub resistor_evals: u64,
    /// MOSFET evaluations.
    pub mosfet_evals: u64,
    /// Waveform grid records written (per node set, not per node).
    pub records: u64,
}

impl Default for TransientStats {
    fn default() -> Self {
        Self {
            steps: 0,
            dv_target_missed: 0,
            dt_max_capped: 0,
            dt_min_taken: TimeInterval::from_seconds(f64::INFINITY),
            dt_max_taken: TimeInterval::from_seconds(0.0),
            current_evals: 0,
            element_evals: 0,
            resistor_evals: 0,
            mosfet_evals: 0,
            records: 0,
        }
    }
}

impl TransientStats {
    /// Folds another run's statistics into this one (for experiments
    /// that run many transients and report an aggregate).
    pub fn absorb(&mut self, other: &TransientStats) {
        self.steps += other.steps;
        self.dv_target_missed += other.dv_target_missed;
        self.dt_max_capped += other.dt_max_capped;
        self.dt_min_taken = self.dt_min_taken.min(other.dt_min_taken);
        self.dt_max_taken = self.dt_max_taken.max(other.dt_max_taken);
        self.current_evals += other.current_evals;
        self.element_evals += other.element_evals;
        self.resistor_evals += other.resistor_evals;
        self.mosfet_evals += other.mosfet_evals;
        self.records += other.records;
    }

    /// Records these statistics as `"<prefix>.<stat>"` metrics on a
    /// telemetry collector (free when the collector is disabled).
    pub fn record_metrics(&self, collector: &mut srlr_telemetry::Collector, prefix: &str) {
        if !collector.is_enabled() {
            return;
        }
        use srlr_telemetry::Value;
        collector.set_metric(&format!("{prefix}.steps"), Value::U64(self.steps));
        collector.set_metric(
            &format!("{prefix}.dv_target_missed"),
            Value::U64(self.dv_target_missed),
        );
        collector.set_metric(
            &format!("{prefix}.dt_max_capped"),
            Value::U64(self.dt_max_capped),
        );
        collector.set_metric(
            &format!("{prefix}.dt_min_taken_s"),
            Value::F64(self.dt_min_taken.seconds()),
        );
        collector.set_metric(
            &format!("{prefix}.dt_max_taken_s"),
            Value::F64(self.dt_max_taken.seconds()),
        );
        collector.set_metric(
            &format!("{prefix}.current_evals"),
            Value::U64(self.current_evals),
        );
        collector.set_metric(
            &format!("{prefix}.element_evals"),
            Value::U64(self.element_evals),
        );
        collector.set_metric(
            &format!("{prefix}.resistor_evals"),
            Value::U64(self.resistor_evals),
        );
        collector.set_metric(
            &format!("{prefix}.mosfet_evals"),
            Value::U64(self.mosfet_evals),
        );
        collector.set_metric(&format!("{prefix}.records"), Value::U64(self.records));
    }
}

/// The outcome of a transient run: per-node waveforms plus per-source
/// delivered energy.
#[derive(Debug, Clone)]
pub struct TransientResult {
    records: Vec<Vec<(f64, f64)>>,
    source_labels: Vec<String>,
    source_energy: Vec<f64>,
    stats: TransientStats,
}

impl TransientResult {
    /// Step-control statistics of the run that produced this result.
    pub fn stats(&self) -> &TransientStats {
        &self.stats
    }

    /// The recorded waveform of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the simulated netlist.
    pub fn waveform(&self, node: NodeId) -> crate::waveform::Waveform {
        let rec = &self.records[node.index()];
        let mut w = crate::waveform::Waveform::new();
        let mut last = f64::NEG_INFINITY;
        for &(t, v) in rec {
            if t > last {
                w.push(TimeInterval::from_seconds(t), Voltage::from_volts(v));
                last = t;
            }
        }
        w
    }

    /// Total energy delivered by the forced source driving the named node
    /// over the whole run. Negative values mean the source absorbed energy.
    ///
    /// Returns `None` if no source with that label exists.
    pub fn source_energy(&self, label: &str) -> Option<Energy> {
        self.source_labels
            .iter()
            .position(|l| l == label)
            .map(|i| Energy::from_joules(self.source_energy[i]))
    }

    /// Sum of the energies delivered by every source in the run.
    pub fn total_source_energy(&self) -> Energy {
        Energy::from_joules(self.source_energy.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;
    use srlr_units::{Capacitance, Length, Resistance};

    /// A simple RC driven by a step: the canonical analytic check.
    fn rc_step() -> (Netlist, NodeId, NodeId) {
        let mut net = Netlist::new();
        let src = net.node("src");
        let out = net.node("out");
        net.force(
            src,
            Stimulus::step(
                Voltage::zero(),
                Voltage::from_volts(0.8),
                TimeInterval::from_picoseconds(1.0),
            ),
        );
        net.add_resistor(src, out, Resistance::from_kilohms(1.0));
        net.add_capacitance(out, Capacitance::from_femtofarads(100.0));
        (net, src, out)
    }

    #[test]
    fn rc_step_matches_analytic_time_constant() {
        let (net, _, out) = rc_step();
        let result = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let w = result.waveform(out);
        // tau = 100 ps; at t = tau + edge the response is 1 - 1/e = 63.2 %.
        let v_tau = w.value_at(TimeInterval::from_picoseconds(102.0));
        assert!(
            (v_tau.volts() - 0.8 * 0.632).abs() < 0.02,
            "v(tau) = {v_tau}"
        );
        // Settles to the rail.
        assert!((w.last_value().volts() - 0.8).abs() < 0.005);
    }

    #[test]
    fn rc_discharge_through_nmos() {
        // Precharge a capacitor and discharge it through an NMOS switch.
        use srlr_tech::{Device, MosfetModel};
        let mut net = Netlist::new();
        let gate = net.node("gate");
        let cap = net.node("cap");
        net.force(
            gate,
            Stimulus::step(
                Voltage::zero(),
                Voltage::from_volts(0.8),
                TimeInterval::from_picoseconds(50.0),
            ),
        );
        net.add_capacitance(cap, Capacitance::from_femtofarads(50.0));
        let dev = Device::new(
            MosKind::Nmos,
            MosfetModel::nmos_soi45(),
            Length::from_micrometers(0.5),
            Length::from_nanometers(45.0),
        );
        net.add_mosfet(dev, cap, gate, NodeId::GROUND);

        let mut init = BTreeMap::new();
        init.insert(cap, Voltage::from_volts(0.8));
        let result = Transient::new(&net).run_from(TimeInterval::from_nanoseconds(1.0), &init);
        let w = result.waveform(cap);
        // Held high until the gate opens...
        assert!(w.value_at(TimeInterval::from_picoseconds(40.0)).volts() > 0.75);
        // ...then discharged to near ground.
        assert!(w.last_value().volts() < 0.05, "final = {}", w.last_value());
    }

    #[test]
    fn inverter_switches() {
        use srlr_tech::{Device, MosfetModel};
        let mut net = Netlist::new();
        let vdd = net.rail("vdd", Voltage::from_volts(0.8));
        let input = net.node("in");
        let out = net.node("out");
        net.force(
            input,
            Stimulus::step(
                Voltage::zero(),
                Voltage::from_volts(0.8),
                TimeInterval::from_picoseconds(100.0),
            ),
        );
        net.add_capacitance(out, Capacitance::from_femtofarads(5.0));
        let n = Device::new(
            MosKind::Nmos,
            MosfetModel::nmos_soi45(),
            Length::from_micrometers(0.4),
            Length::from_nanometers(45.0),
        );
        let p = Device::new(
            MosKind::Pmos,
            MosfetModel::pmos_soi45(),
            Length::from_micrometers(0.8),
            Length::from_nanometers(45.0),
        );
        net.add_mosfet(n, out, input, NodeId::GROUND);
        net.add_mosfet(p, out, input, vdd);

        let result = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let w = result.waveform(out);
        // With the input low the PMOS pulls the output to the rail.
        assert!(
            w.value_at(TimeInterval::from_picoseconds(95.0)).volts() > 0.75,
            "pre-switch output = {}",
            w.value_at(TimeInterval::from_picoseconds(95.0))
        );
        // With the input high the NMOS wins and the output falls.
        assert!(w.last_value().volts() < 0.05, "final = {}", w.last_value());
    }

    #[test]
    fn source_energy_of_rc_charge() {
        // Charging C to V through R draws E = C V^2 from the source
        // (half stored, half burned in R).
        let (net, _, _) = rc_step();
        let result = Transient::new(&net).run(TimeInterval::from_nanoseconds(2.0));
        let e = result.source_energy("src").expect("src is a source");
        let expect = 100e-15 * 0.8 * 0.8; // C V^2 = 64 fJ
        assert!(
            (e.femtojoules() - expect * 1e15).abs() < expect * 1e15 * 0.05,
            "E = {e}, expected ~{} fJ",
            expect * 1e15
        );
    }

    #[test]
    fn total_source_energy_sums_labels() {
        let (net, _, _) = rc_step();
        let result = Transient::new(&net).run(TimeInterval::from_nanoseconds(2.0));
        assert_eq!(
            result.total_source_energy(),
            result.source_energy("src").unwrap()
        );
        assert!(result.source_energy("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let (net, _, _) = rc_step();
        let _ = Transient::new(&net).run(TimeInterval::zero());
    }

    #[test]
    fn resistive_divider_settles_to_the_analytic_ratio() {
        // src -- 1k -- mid -- 3k -- gnd: mid settles at 3/4 of the rail.
        let mut net = Netlist::new();
        let src = net.node("src");
        let mid = net.node("mid");
        net.force(src, Stimulus::dc(Voltage::from_volts(0.8)));
        net.add_resistor(src, mid, Resistance::from_kilohms(1.0));
        net.add_resistor(mid, NodeId::GROUND, Resistance::from_kilohms(3.0));
        net.add_capacitance(mid, Capacitance::from_femtofarads(20.0));
        let r = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let v = r.waveform(mid).last_value();
        assert!((v.volts() - 0.6).abs() < 0.003, "divider settled at {v}");
    }

    #[test]
    fn linear_superposition_holds() {
        // For the linear RC, the response to a double-height step is twice
        // the response to a single-height step at every sample.
        let response = |volts: f64| {
            let mut net = Netlist::new();
            let src = net.node("src");
            let out = net.node("out");
            net.force(
                src,
                Stimulus::step(
                    Voltage::zero(),
                    Voltage::from_volts(volts),
                    TimeInterval::from_picoseconds(1.0),
                ),
            );
            net.add_resistor(src, out, Resistance::from_kilohms(2.0));
            net.add_capacitance(out, Capacitance::from_femtofarads(50.0));
            Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0))
        };
        let single = response(0.4);
        let double = response(0.8);
        let mut net_probe = Netlist::new();
        let _ = net_probe.node("src");
        let out = net_probe.node("out");
        for ps in [30.0, 80.0, 150.0, 400.0] {
            let t = TimeInterval::from_picoseconds(ps);
            let v1 = single.waveform(out).value_at(t).volts();
            let v2 = double.waveform(out).value_at(t).volts();
            assert!(
                (v2 - 2.0 * v1).abs() < 0.01,
                "superposition violated at {ps} ps: {v1} vs {v2}"
            );
        }
    }

    #[test]
    fn two_coupled_rcs_share_charge_correctly() {
        // Precharge C1, connect to C2 through R: both settle at the
        // charge-sharing voltage C1 V0 / (C1 + C2).
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.add_capacitance(a, Capacitance::from_femtofarads(100.0));
        net.add_capacitance(b, Capacitance::from_femtofarads(300.0));
        net.add_resistor(a, b, Resistance::from_kilohms(1.0));
        let mut init = BTreeMap::new();
        init.insert(a, Voltage::from_volts(0.8));
        let r = Transient::new(&net).run_from(TimeInterval::from_nanoseconds(5.0), &init);
        let va = r.waveform(a).last_value().volts();
        let vb = r.waveform(b).last_value().volts();
        // Ideal sharing: 0.8 * 100/400 = 0.2 (the small parasitic floor
        // shifts it by <0.1 %).
        assert!((va - 0.2).abs() < 0.005, "a settled at {va}");
        assert!((vb - 0.2).abs() < 0.005, "b settled at {vb}");
        assert!((va - vb).abs() < 1e-3, "nodes must equalise");
    }

    #[test]
    fn stats_count_steps_and_evals() {
        let (net, _, _) = rc_step();
        let r = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let s = r.stats();
        assert!(s.steps > 10, "expected many steps, got {}", s.steps);
        assert_eq!(s.current_evals, 2 * s.steps, "RK2 = two evals per step");
        // rc_step has one resistor and no MOSFETs.
        assert_eq!(s.resistor_evals, s.current_evals);
        assert_eq!(s.mosfet_evals, 0);
        assert_eq!(s.element_evals, s.resistor_evals);
        assert!(s.dt_min_taken.seconds() > 0.0 && s.dt_min_taken <= s.dt_max_taken);
        assert!(s.records >= 2, "at least first + final grid records");
        assert_eq!(
            s.steps,
            s.dv_target_missed + s.dt_max_capped + (s.steps - s.dv_target_missed - s.dt_max_capped),
            "tallies never exceed the step count"
        );
        assert!(s.dv_target_missed + s.dt_max_capped <= s.steps);
    }

    #[test]
    fn tight_dv_target_forces_dt_min_misses() {
        // An absurdly tight dv target (1 nV/step) demands steps far below
        // dt_min while the RC edge slews, so the controller must report
        // missed targets; the default target on the same circuit reports
        // mostly stiffness-capped steps once settled.
        let (net, _, _) = rc_step();
        let tight = Transient::new(&net)
            .with_dv_target(Voltage::from_volts(1e-9))
            .run(TimeInterval::from_picoseconds(100.0));
        assert!(
            tight.stats().dv_target_missed > 0,
            "1 nV/step target must miss: {:?}",
            tight.stats()
        );
        let relaxed = Transient::new(&net).run(TimeInterval::from_nanoseconds(2.0));
        assert!(
            relaxed.stats().dt_max_capped > 0,
            "settled RC must hit the stiffness cap: {:?}",
            relaxed.stats()
        );
    }

    #[test]
    fn stats_absorb_aggregates_runs() {
        let (net, _, _) = rc_step();
        let a = Transient::new(&net).run(TimeInterval::from_picoseconds(100.0));
        let b = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let mut agg = TransientStats::default();
        agg.absorb(a.stats());
        agg.absorb(b.stats());
        assert_eq!(agg.steps, a.stats().steps + b.stats().steps);
        assert_eq!(
            agg.dt_min_taken,
            a.stats().dt_min_taken.min(b.stats().dt_min_taken)
        );
        assert_eq!(
            agg.dt_max_taken,
            a.stats().dt_max_taken.max(b.stats().dt_max_taken)
        );
    }

    #[test]
    fn stats_record_metrics_into_collector() {
        use srlr_telemetry::{Collector, Value};
        let (net, _, _) = rc_step();
        let r = Transient::new(&net).run(TimeInterval::from_picoseconds(100.0));
        let mut c = Collector::enabled("sim");
        r.stats().record_metrics(&mut c, "transient");
        assert_eq!(
            c.metrics().get("transient.steps"),
            Some(&Value::U64(r.stats().steps))
        );
        assert!(c.metrics().contains_key("transient.dt_min_taken_s"));
        // Disabled collectors stay empty.
        let mut off = Collector::disabled();
        r.stats().record_metrics(&mut off, "transient");
        assert!(off.metrics().is_empty());
    }

    #[test]
    fn record_resolution_is_respected() {
        let (net, _, out) = rc_step();
        let coarse = Transient::new(&net)
            .with_record_resolution(TimeInterval::from_picoseconds(10.0))
            .run(TimeInterval::from_nanoseconds(1.0));
        let fine = Transient::new(&net)
            .with_record_resolution(TimeInterval::from_picoseconds(1.0))
            .run(TimeInterval::from_nanoseconds(1.0));
        assert!(fine.waveform(out).len() > coarse.waveform(out).len() * 5);
    }

    #[test]
    fn tighter_tolerance_changes_little_on_smooth_circuit() {
        let (net, _, out) = rc_step();
        let coarse = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let fine = Transient::new(&net)
            .with_dv_target(Voltage::from_microvolts(500.0))
            .run(TimeInterval::from_nanoseconds(1.0));
        let t = TimeInterval::from_picoseconds(150.0);
        let dv = (coarse.waveform(out).value_at(t) - fine.waveform(out).value_at(t)).abs();
        assert!(dv.millivolts() < 5.0, "solver tolerance sensitivity {dv}");
    }
}
