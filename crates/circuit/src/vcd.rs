//! Value-change-dump (VCD) export of recorded waveforms.
//!
//! VCD is the lingua franca of waveform viewers (GTKWave & friends).
//! Analog node voltages are exported as IEEE-1364 `real` variables, so a
//! transient result can be inspected next to RTL traces.

use crate::waveform::Waveform;
use std::io::{self, Write};

/// Time resolution of the exported dump.
const TIMESCALE_FS: f64 = 1.0e-15;

/// A named waveform set destined for one VCD file.
///
/// # Examples
///
/// ```
/// use srlr_circuit::{vcd::VcdExporter, Waveform};
/// use srlr_units::{TimeInterval, Voltage};
///
/// let wave = Waveform::from_samples([
///     (TimeInterval::zero(), Voltage::zero()),
///     (TimeInterval::from_picoseconds(10.0), Voltage::from_volts(0.8)),
/// ]);
/// let mut vcd = VcdExporter::new("srlr");
/// vcd.add("out", &wave);
/// let text = vcd.render();
/// assert!(text.starts_with("$date"));
/// assert!(text.contains("$var real 64"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VcdExporter {
    module: String,
    signals: Vec<(String, Waveform)>,
}

impl VcdExporter {
    /// Creates an exporter; `module` names the VCD scope.
    pub fn new(module: &str) -> Self {
        Self {
            module: module.to_owned(),
            signals: Vec::new(),
        }
    }

    /// Adds a signal.
    ///
    /// # Panics
    ///
    /// Panics if the waveform is empty or the name repeats.
    pub fn add(&mut self, name: &str, waveform: &Waveform) {
        assert!(!waveform.is_empty(), "cannot export an empty waveform");
        assert!(
            self.signals.iter().all(|(n, _)| n != name),
            "duplicate signal name {name}"
        );
        self.signals.push((name.to_owned(), waveform.clone()));
    }

    /// Number of signals added so far.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// `true` when no signals were added.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }

    /// The identifier code of the n-th signal (`!`, `"`, `#`, ...).
    fn code(index: usize) -> String {
        // VCD identifier characters span '!'..='~'.
        let mut i = index;
        let mut out = String::new();
        loop {
            // srlr-lint: allow(lossy-cast, reason = "i % 94 < 94 fits in u8")
            out.push(char::from(b'!' + (i % 94) as u8));
            i /= 94;
            if i == 0 {
                break;
            }
        }
        out
    }

    /// Streams the VCD text to any [`io::Write`] sink — a file, a pipe,
    /// or an in-memory buffer. Unlike the old all-in-one-`String`
    /// renderer, nothing but the (deduplicated, sorted) value-change
    /// index is buffered, so multi-million-sample dumps stream straight
    /// to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    ///
    /// # Panics
    ///
    /// Panics if no signals were added.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        assert!(!self.signals.is_empty(), "no signals to export");
        w.write_all(b"$date srlr reproduction $end\n")?;
        w.write_all(b"$version srlr-circuit vcd exporter $end\n")?;
        w.write_all(b"$timescale 1 fs $end\n")?;
        writeln!(w, "$scope module {} $end", self.module)?;
        for (i, (name, _)) in self.signals.iter().enumerate() {
            writeln!(w, "$var real 64 {} {} $end", Self::code(i), name)?;
        }
        w.write_all(b"$upscope $end\n$enddefinitions $end\n")?;

        // Merge all sample times, emitting value changes in time order.
        let mut events: Vec<(u64, usize, f64)> = Vec::new();
        for (i, (_, wave)) in self.signals.iter().enumerate() {
            let mut last: Option<f64> = None;
            for (t, v) in wave.iter() {
                let volts = v.volts();
                if last.is_some_and(|l| (l - volts).abs() < 1e-9) {
                    continue;
                }
                last = Some(volts);
                let ticks = (t.seconds() / TIMESCALE_FS).round() as u64;
                events.push((ticks, i, volts));
            }
        }
        events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut current_time = None;
        for (ticks, signal, volts) in events {
            if current_time != Some(ticks) {
                writeln!(w, "#{ticks}")?;
                current_time = Some(ticks);
            }
            writeln!(w, "r{volts:.6} {}", Self::code(signal))?;
        }
        Ok(())
    }

    /// Renders the VCD text into a `String` (convenience wrapper over
    /// [`VcdExporter::write_to`]).
    ///
    /// # Panics
    ///
    /// Panics if no signals were added.
    pub fn render(&self) -> String {
        let mut buf = Vec::new();
        // Writing into a Vec cannot fail.
        self.write_to(&mut buf).unwrap_or_default();
        String::from_utf8_lossy(&buf).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_units::{TimeInterval, Voltage};

    fn wave(points: &[(f64, f64)]) -> Waveform {
        Waveform::from_samples(
            points
                .iter()
                .map(|&(ps, v)| (TimeInterval::from_picoseconds(ps), Voltage::from_volts(v))),
        )
    }

    #[test]
    fn renders_header_and_values() {
        let mut vcd = VcdExporter::new("dut");
        vcd.add("x", &wave(&[(0.0, 0.55), (10.0, 0.1), (20.0, 0.55)]));
        let text = vcd.render();
        assert!(text.contains("$timescale 1 fs $end"));
        assert!(text.contains("$scope module dut $end"));
        assert!(text.contains("$var real 64 ! x $end"));
        assert!(text.contains("#0"));
        assert!(text.contains("r0.550000 !"));
        assert!(text.contains("#10000"), "10 ps = 10,000 fs");
    }

    #[test]
    fn multiple_signals_get_distinct_codes() {
        let mut vcd = VcdExporter::new("dut");
        vcd.add("a", &wave(&[(0.0, 0.0)]));
        vcd.add("b", &wave(&[(0.0, 1.0)]));
        let text = vcd.render();
        assert!(text.contains("$var real 64 ! a $end"));
        assert!(text.contains("$var real 64 \" b $end"));
        assert_eq!(vcd.len(), 2);
    }

    #[test]
    fn repeated_values_are_deduplicated() {
        let mut vcd = VcdExporter::new("dut");
        vcd.add("flat", &wave(&[(0.0, 0.4), (1.0, 0.4), (2.0, 0.4)]));
        let text = vcd.render();
        assert_eq!(text.matches("r0.400000").count(), 1);
    }

    #[test]
    fn write_to_and_render_agree_byte_for_byte() {
        let mut vcd = VcdExporter::new("dut");
        vcd.add("a", &wave(&[(0.0, 0.0), (10.0, 0.8)]));
        vcd.add("b", &wave(&[(0.0, 0.55), (10.0, 0.1)]));
        let mut buf = Vec::new();
        vcd.write_to(&mut buf).expect("vec write cannot fail");
        assert_eq!(String::from_utf8(buf).expect("utf8"), vcd.render());
    }

    #[test]
    fn write_to_propagates_io_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut vcd = VcdExporter::new("dut");
        vcd.add("x", &wave(&[(0.0, 0.1)]));
        assert!(vcd.write_to(&mut Failing).is_err());
    }

    #[test]
    fn codes_extend_past_94_signals() {
        assert_eq!(VcdExporter::code(0), "!");
        assert_eq!(VcdExporter::code(93), "~");
        assert_eq!(VcdExporter::code(94), "!\"");
    }

    #[test]
    #[should_panic(expected = "duplicate signal")]
    fn duplicate_names_rejected() {
        let mut vcd = VcdExporter::new("dut");
        vcd.add("x", &wave(&[(0.0, 0.0)]));
        vcd.add("x", &wave(&[(0.0, 0.0)]));
    }

    #[test]
    #[should_panic(expected = "no signals")]
    fn empty_export_rejected() {
        let _ = VcdExporter::new("dut").render();
    }

    #[test]
    fn fig4_waveforms_export_cleanly() {
        use srlr_tech::Technology;
        // Smoke test against real simulator output (pulled from core via
        // a tiny RC so this crate stays below core in the DAG).
        use crate::{Netlist, Stimulus, Transient};
        use srlr_units::{Capacitance, Resistance};
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.force(
            a,
            Stimulus::step(
                Voltage::zero(),
                Technology::soi45().vdd,
                TimeInterval::from_picoseconds(5.0),
            ),
        );
        net.add_resistor(a, b, Resistance::from_kilohms(1.0));
        net.add_capacitance(b, Capacitance::from_femtofarads(20.0));
        let result = Transient::new(&net).run(TimeInterval::from_picoseconds(200.0));
        let mut vcd = VcdExporter::new("rc");
        vcd.add("a", &result.waveform(a));
        vcd.add("b", &result.waveform(b));
        let text = vcd.render();
        assert!(text.len() > 500);
        assert!(text.lines().filter(|l| l.starts_with('#')).count() > 10);
    }
}
