//! A compact nonlinear transient circuit simulator.
//!
//! This is the SPICE stand-in for the reproduction: enough of a simulator
//! to integrate RC π-ladder wires driven by behavioural MOSFETs (the
//! [`srlr_tech`] alpha-power model) and recover the paper's Fig. 4
//! waveforms — low-swing input pulses, the node-X discharge/reset cycle,
//! and repeated output pulses.
//!
//! Design choices:
//!
//! * **Node-conductance formulation.** Every node carries a lumped
//!   capacitance to ground; every element contributes a current as a
//!   function of the present node voltages. Coupling capacitance is folded
//!   into the ground capacitance via the wire model's Miller factor, which
//!   keeps the system diagonal and lets an explicit integrator work.
//! * **Adaptive explicit integration** (midpoint / RK2) with the step size
//!   limited both by a per-step voltage-change target and by the stiffest
//!   resistive time constant found at build time. This is robust for the
//!   RC-plus-transistor circuits in this workspace without needing a
//!   Newton solver.
//! * **Energy accounting.** Charge drawn from each voltage source is
//!   integrated so per-pulse and per-bit energies can be measured the same
//!   way the paper measures link power.
//!
//! # Examples
//!
//! Charging an RC with a step:
//!
//! ```
//! use srlr_circuit::{Netlist, Stimulus, Transient};
//! use srlr_units::{Capacitance, Resistance, TimeInterval, Voltage};
//!
//! let mut net = Netlist::new();
//! let src = net.node("src");
//! let out = net.node("out");
//! net.force(src, Stimulus::step(Voltage::zero(), Voltage::from_volts(0.8),
//!     TimeInterval::from_picoseconds(10.0)));
//! net.add_resistor(src, out, Resistance::from_kilohms(1.0));
//! net.add_capacitance(out, Capacitance::from_femtofarads(100.0));
//!
//! let result = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
//! let w = result.waveform(out);
//! // After ~7 tau the output has reached the rail.
//! assert!((w.last_value().volts() - 0.8).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prebuilt cells: inverters, SRLR stages and keeper structures.
pub mod cells;
/// RC ladder models of distributed on-chip wires.
pub mod ladder;
/// Netlist construction: nodes, passives, MOSFETs and forced sources.
pub mod netlist;
/// The adaptive explicit transient integrator.
pub mod sim;
/// Time-domain source waveform descriptions.
pub mod stimulus;
/// VCD dumping of simulated waveforms.
pub mod vcd;
/// Sampled waveforms and edge/level measurements.
pub mod waveform;

pub use ladder::LadderSpec;
pub use netlist::{Netlist, NodeId};
pub use sim::{Transient, TransientResult, TransientStats};
pub use stimulus::Stimulus;
pub use waveform::{Edge, Waveform};
