//! Distributed-RC wire builders: π-ladder discretisation of a wire
//! segment's extracted parasitics.

use crate::netlist::{Netlist, NodeId};
use srlr_tech::WireRc;
use srlr_units::{Capacitance, Resistance};

/// How to discretise a wire into the netlist.
///
/// # Examples
///
/// ```
/// use srlr_circuit::{LadderSpec, Netlist};
/// use srlr_tech::WireGeometry;
/// use srlr_units::Length;
///
/// let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
/// let mut net = Netlist::new();
/// let a = net.node("near");
/// let spec = LadderSpec::new(10);
/// let far = spec.build(&mut net, a, rc, "w0");
/// assert_ne!(a, far);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderSpec {
    sections: usize,
}

impl LadderSpec {
    /// A ladder with the given number of π sections.
    ///
    /// Ten sections keep the discretisation error of a distributed line
    /// below a percent for the pulse widths used in this workspace.
    ///
    /// # Panics
    ///
    /// Panics if `sections` is zero.
    pub fn new(sections: usize) -> Self {
        assert!(sections > 0, "a ladder needs at least one section");
        Self { sections }
    }

    /// Number of π sections.
    pub fn sections(self) -> usize {
        self.sections
    }

    /// Builds the ladder into `net` starting from `near`, returning the
    /// far-end node. Intermediate nodes are named `{prefix}.k`.
    ///
    /// Each π section carries `R/n` of series resistance with `C/2n` at
    /// each side, so internal nodes accumulate `C/n` and the two ends
    /// `C/2n` each.
    pub fn build(self, net: &mut Netlist, near: NodeId, rc: WireRc, prefix: &str) -> NodeId {
        let n = self.sections as f64;
        let r_sec = Resistance::from_ohms(rc.resistance.ohms() / n);
        let c_half = Capacitance::from_farads(rc.capacitance.farads() / (2.0 * n));

        let mut prev = near;
        net.add_capacitance(prev, c_half);
        for k in 0..self.sections {
            let next = net.node(&format!("{prefix}.{k}"));
            net.add_resistor(prev, next, r_sec);
            // Far side of this section: half from this section plus half
            // from the next one (or just half at the very end).
            let c = if k + 1 == self.sections {
                c_half
            } else {
                c_half * 2.0
            };
            net.add_capacitance(next, c);
            prev = next;
        }
        prev
    }
}

impl Default for LadderSpec {
    fn default() -> Self {
        Self::new(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Transient;
    use crate::stimulus::Stimulus;
    use srlr_tech::WireGeometry;
    use srlr_units::{Length, TimeInterval, Voltage};

    #[test]
    fn ladder_builds_expected_topology() {
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        let mut net = Netlist::new();
        let near = net.node("near");
        let far = LadderSpec::new(5).build(&mut net, near, rc, "w");
        // near + 5 new nodes + gnd.
        assert_eq!(net.node_count(), 7);
        assert_eq!(net.element_count(), 5);
        assert_eq!(net.node_name(far), "w.4");
    }

    #[test]
    fn total_capacitance_is_conserved() {
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        let mut net = Netlist::new();
        let near = net.node("near");
        let far = LadderSpec::new(8).build(&mut net, near, rc, "w");
        let total: f64 = (0..net.node_count())
            .filter(|&i| i != 0)
            .map(|i| net.node_capacitance[i])
            .sum();
        assert!(
            (total - rc.capacitance.farads()).abs() < rc.capacitance.farads() * 0.01,
            "total C = {total}"
        );
        let _ = far;
    }

    #[test]
    fn step_delay_matches_distributed_line_estimate() {
        // The 50 % step delay of a distributed RC line is ~0.38 R C.
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        let mut net = Netlist::new();
        let near = net.node("near");
        let far = LadderSpec::new(10).build(&mut net, near, rc, "w");
        net.force(
            near,
            Stimulus::step(
                Voltage::zero(),
                Voltage::from_volts(0.8),
                TimeInterval::from_picoseconds(1.0),
            ),
        );
        let result = Transient::new(&net).run(TimeInterval::from_nanoseconds(2.0));
        let w = result.waveform(far);
        let crossings = w.crossings(Voltage::from_volts(0.4));
        assert!(!crossings.is_empty(), "far end never crossed 50 %");
        let t50 = crossings[0].0 - TimeInterval::from_picoseconds(1.0);
        let expect = rc.time_constant() * 0.38;
        let err = (t50 - expect).abs().seconds() / expect.seconds();
        assert!(err < 0.25, "t50 = {t50}, expected ~{expect}");
    }

    #[test]
    fn narrow_pulse_attenuates_along_ladder() {
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        let mut net = Netlist::new();
        let near = net.node("near");
        let far = LadderSpec::new(10).build(&mut net, near, rc, "w");
        net.force(
            near,
            Stimulus::pulse(
                Voltage::zero(),
                Voltage::from_volts(0.4),
                TimeInterval::from_picoseconds(20.0),
                TimeInterval::from_picoseconds(60.0),
                TimeInterval::from_picoseconds(5.0),
            ),
        );
        let result = Transient::new(&net).run(TimeInterval::from_nanoseconds(1.0));
        let peak = result.waveform(far).peak();
        assert!(
            peak.volts() < 0.4 * 0.95,
            "narrow pulse should attenuate, peak = {peak}"
        );
        assert!(
            peak.volts() > 0.05,
            "pulse should still arrive, peak = {peak}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn zero_sections_rejected() {
        let _ = LadderSpec::new(0);
    }

    #[test]
    fn default_is_ten_sections() {
        assert_eq!(LadderSpec::default().sections(), 10);
    }
}
