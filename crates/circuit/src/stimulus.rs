//! Voltage stimuli for forced nodes: DC, steps, piecewise-linear ramps and
//! pulse trains built from bit sequences.

use srlr_units::{TimeInterval, Voltage};

/// A voltage-versus-time description for a forced node.
///
/// # Examples
///
/// ```
/// use srlr_circuit::Stimulus;
/// use srlr_units::{TimeInterval, Voltage};
///
/// let step = Stimulus::step(Voltage::zero(), Voltage::from_volts(0.8),
///     TimeInterval::from_picoseconds(100.0));
/// assert_eq!(step.at(TimeInterval::zero()), Voltage::zero());
/// assert_eq!(step.at(TimeInterval::from_nanoseconds(1.0)), Voltage::from_volts(0.8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Stimulus {
    /// Sorted (time-seconds, volts) breakpoints; linear in between, flat
    /// outside.
    points: Vec<(f64, f64)>,
}

impl Stimulus {
    /// A constant voltage.
    pub fn dc(v: Voltage) -> Self {
        Self {
            points: vec![(0.0, v.volts())],
        }
    }

    /// A step from `from` to `to` at time `when`, with a 1 ps edge.
    pub fn step(from: Voltage, to: Voltage, when: TimeInterval) -> Self {
        let t = when.seconds();
        Self {
            points: vec![
                (0.0, from.volts()),
                (t, from.volts()),
                (t + 1e-12, to.volts()),
            ],
        }
    }

    /// A piecewise-linear stimulus from explicit `(time, voltage)`
    /// breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or the times are not strictly
    /// increasing.
    pub fn pwl<I>(points: I) -> Self
    where
        I: IntoIterator<Item = (TimeInterval, Voltage)>,
    {
        let points: Vec<(f64, f64)> = points
            .into_iter()
            .map(|(t, v)| (t.seconds(), v.volts()))
            .collect();
        assert!(!points.is_empty(), "pwl stimulus needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "pwl breakpoint times must be strictly increasing"
            );
        }
        Self { points }
    }

    /// A single rectangular pulse: `low` before `start`, `high` for
    /// `width`, back to `low`, with `edge`-long linear transitions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `edge` is not strictly positive.
    pub fn pulse(
        low: Voltage,
        high: Voltage,
        start: TimeInterval,
        width: TimeInterval,
        edge: TimeInterval,
    ) -> Self {
        assert!(width.seconds() > 0.0, "pulse width must be positive");
        assert!(edge.seconds() > 0.0, "pulse edge must be positive");
        let t0 = start.seconds();
        let w = width.seconds();
        let e = edge.seconds();
        Self {
            points: vec![
                (0.0, low.volts()),
                (t0, low.volts()),
                (t0 + e, high.volts()),
                (t0 + e + w, high.volts()),
                (t0 + e + w + e, low.volts()),
            ],
        }
    }

    /// A return-to-zero pulse train encoding `bits`: each `1` bit produces
    /// a pulse of the given `width` at the start of its bit period, each
    /// `0` bit stays low. This is the pulse-modulated format the SRLR
    /// link transmits.
    ///
    /// # Panics
    ///
    /// Panics if the pulse `width` (plus edges) does not fit in the bit
    /// period, or if `bits` is empty.
    pub fn pulse_train(
        bits: &[bool],
        low: Voltage,
        high: Voltage,
        bit_period: TimeInterval,
        width: TimeInterval,
        edge: TimeInterval,
    ) -> Self {
        assert!(!bits.is_empty(), "pulse train needs at least one bit");
        let period = bit_period.seconds();
        let w = width.seconds();
        let e = edge.seconds();
        assert!(
            w + 2.0 * e < period,
            "pulse (width + 2 edges) must fit in the bit period"
        );
        let mut points = vec![(0.0, low.volts())];
        for (i, &bit) in bits.iter().enumerate() {
            if !bit {
                continue;
            }
            let t0 = i as f64 * period + 0.1 * e;
            points.push((t0, low.volts()));
            points.push((t0 + e, high.volts()));
            points.push((t0 + e + w, high.volts()));
            points.push((t0 + e + w + e, low.volts()));
        }
        // The leading (0, low) point may coincide with an immediate pulse
        // at bit 0; drop duplicates that violate monotonicity.
        points.dedup_by(|b, a| b.0 <= a.0);
        Self { points }
    }

    /// The stimulus voltage at time `t`.
    pub fn at(&self, t: TimeInterval) -> Voltage {
        Voltage::from_volts(self.value_at_seconds(t.seconds()))
    }

    pub(crate) fn value_at_seconds(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the surrounding segment.
        let idx = pts.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = pts[idx - 1];
        let (t1, v1) = pts[idx];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// The last breakpoint time — simulations should run at least this long
    /// to see the whole stimulus.
    pub fn duration(&self) -> TimeInterval {
        TimeInterval::from_seconds(self.points[self.points.len() - 1].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let s = Stimulus::dc(Voltage::from_volts(0.8));
        assert_eq!(s.at(TimeInterval::zero()).volts(), 0.8);
        assert_eq!(s.at(TimeInterval::from_seconds(1.0)).volts(), 0.8);
    }

    #[test]
    fn step_transitions_at_the_right_time() {
        let s = Stimulus::step(
            Voltage::zero(),
            Voltage::from_volts(0.8),
            TimeInterval::from_picoseconds(100.0),
        );
        assert_eq!(s.at(TimeInterval::from_picoseconds(99.0)).volts(), 0.0);
        assert!((s.at(TimeInterval::from_picoseconds(102.0)).volts() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_linearly() {
        let s = Stimulus::pwl([
            (TimeInterval::zero(), Voltage::zero()),
            (
                TimeInterval::from_nanoseconds(1.0),
                Voltage::from_volts(1.0),
            ),
        ]);
        let mid = s.at(TimeInterval::from_picoseconds(500.0));
        assert!((mid.volts() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pwl_rejects_unsorted_times() {
        let _ = Stimulus::pwl([
            (TimeInterval::from_nanoseconds(1.0), Voltage::zero()),
            (TimeInterval::zero(), Voltage::zero()),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn pwl_rejects_empty() {
        let _ = Stimulus::pwl(Vec::<(TimeInterval, Voltage)>::new());
    }

    #[test]
    fn pulse_shape() {
        let s = Stimulus::pulse(
            Voltage::zero(),
            Voltage::from_millivolts(400.0),
            TimeInterval::from_picoseconds(50.0),
            TimeInterval::from_picoseconds(100.0),
            TimeInterval::from_picoseconds(5.0),
        );
        assert_eq!(s.at(TimeInterval::from_picoseconds(10.0)).volts(), 0.0);
        let top = s.at(TimeInterval::from_picoseconds(100.0));
        assert!((top.millivolts() - 400.0).abs() < 1e-9);
        assert_eq!(s.at(TimeInterval::from_picoseconds(300.0)).volts(), 0.0);
    }

    #[test]
    fn pulse_train_pulses_only_on_ones() {
        let period = TimeInterval::from_picoseconds(250.0);
        let s = Stimulus::pulse_train(
            &[true, false, true],
            Voltage::zero(),
            Voltage::from_millivolts(400.0),
            period,
            TimeInterval::from_picoseconds(80.0),
            TimeInterval::from_picoseconds(5.0),
        );
        // Mid-pulse of bit 0.
        assert!(s.at(TimeInterval::from_picoseconds(50.0)).millivolts() > 390.0);
        // Bit 1 stays low throughout.
        assert_eq!(s.at(TimeInterval::from_picoseconds(375.0)).volts(), 0.0);
        // Bit 2 pulses again.
        assert!(s.at(TimeInterval::from_picoseconds(550.0)).millivolts() > 390.0);
        // Total duration covers the last pulse.
        assert!(s.duration().picoseconds() > 500.0);
    }

    #[test]
    #[should_panic(expected = "must fit in the bit period")]
    fn oversized_pulse_rejected() {
        let _ = Stimulus::pulse_train(
            &[true],
            Voltage::zero(),
            Voltage::from_volts(0.4),
            TimeInterval::from_picoseconds(100.0),
            TimeInterval::from_picoseconds(99.0),
            TimeInterval::from_picoseconds(5.0),
        );
    }
}
