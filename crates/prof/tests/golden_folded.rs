//! Golden-file test: folded-stack output is byte-stable.
//!
//! The fixture replays the MC engine's instrumentation shape — a sweep
//! frame, two merged per-batch worker children with elaborate/kernel/
//! bit-slot frames and count-only tallies — against the deterministic
//! tick clock, and asserts the rendered folded text matches
//! `tests/golden/mc_small.folded` byte for byte. Any change to frame
//! aggregation, self-time accounting, micros rounding, sorting, or the
//! folded syntax shows up as a diff against the committed artifact.

use srlr_prof::{fold, parse_folded};
use srlr_telemetry::{Clock, Profiler};

fn batch_child(root: &Profiler, with_cert_hit: bool) -> Profiler {
    let mut c = root.child();
    c.enter("mc.batch"); // t=0
    c.enter("elaborate"); // t=1
    c.exit(); // t=2: elaborate self 1 s
    if with_cert_hit {
        c.count("cert_hit");
    }
    c.enter("kernel"); // t=3
    c.enter("bit_slot"); // t=4
    c.exit(); // t=5
    c.enter("bit_slot"); // t=6
    c.exit(); // t=7: bit_slot self 2 s
    c.count("lane_kill");
    c.exit(); // t=8: kernel total 5, self 3
    c.exit(); // t=9: batch total 9, self 3
    c
}

fn sample() -> Profiler {
    let mut root = Profiler::enabled(Clock::tick(1.0));
    root.enter("mc.sweep"); // t=0
    let a = batch_child(&root, true);
    let b = batch_child(&root, false);
    root.merge(a);
    root.merge(b);
    root.exit(); // t=1: sweep total 1 s, self clamps to 0
    root
}

#[test]
fn folded_output_matches_golden_file() {
    let text = fold(&sample().snapshot());
    let golden = include_str!("golden/mc_small.folded");
    assert_eq!(
        text, golden,
        "folded output drifted from tests/golden/mc_small.folded;\n\
         if the change is intentional, update the golden file"
    );
}

#[test]
fn golden_file_itself_parses() {
    let lines = parse_folded(include_str!("golden/mc_small.folded")).expect("golden parses");
    assert_eq!(lines.len(), 7);
    let kernel_total: u64 = lines
        .iter()
        .filter(|l| l.path.contains("kernel"))
        .map(|l| l.value)
        .sum();
    assert_eq!(
        kernel_total, 10_000_000,
        "kernel family owns 10 s of self time"
    );
}
