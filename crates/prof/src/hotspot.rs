//! Top-N self-time hotspot attribution.
//!
//! A flame graph answers "what does the time distribution look like";
//! the hotspot table answers the optimization question directly: which
//! frames own the most *self* time, what fraction of the run is that,
//! and how often were they entered. Works from either a live
//! [`Profile`] (counts available) or parsed folded lines (counts
//! unknown, e.g. a file from another tool).

use crate::folded::FoldedLine;
use srlr_telemetry::Profile;
use std::fmt::Write as _;

/// One hotspot row.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// `;`-joined root-to-frame path.
    pub path: String,
    /// Self value in microseconds.
    pub self_us: u64,
    /// Share of the profile's total self time, in percent.
    pub pct: f64,
    /// Invocation count when known (`None` for folded-file input).
    pub count: Option<u64>,
}

/// The top `n` frames of `profile` by self time, descending; ties break
/// by path so the table is deterministic.
pub fn hotspots(profile: &Profile, n: usize) -> Vec<Hotspot> {
    let counts: std::collections::BTreeMap<String, u64> = profile
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| (profile.path(i), node.count))
        .collect();
    let rows = crate::folded::fold_lines(profile)
        .into_iter()
        .map(|l| {
            let count = counts.get(&l.path).copied();
            (l, count)
        })
        .collect::<Vec<_>>();
    rank(rows, n)
}

/// The top `n` folded lines by value, descending.
pub fn hotspots_folded(lines: &[FoldedLine], n: usize) -> Vec<Hotspot> {
    rank(lines.iter().map(|l| (l.clone(), None)).collect(), n)
}

fn rank(rows: Vec<(FoldedLine, Option<u64>)>, n: usize) -> Vec<Hotspot> {
    let total: u64 = rows.iter().map(|(l, _)| l.value).sum();
    let mut spots: Vec<Hotspot> = rows
        .into_iter()
        .map(|(l, count)| Hotspot {
            pct: if total > 0 {
                l.value as f64 * 100.0 / total as f64
            } else {
                0.0
            },
            path: l.path,
            self_us: l.value,
            count,
        })
        .collect();
    spots.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.path.cmp(&b.path)));
    spots.truncate(n);
    spots
}

/// Renders hotspot rows as an aligned ASCII table (ends with a
/// newline; empty input renders a placeholder line).
pub fn render_table(rows: &[Hotspot]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("(empty profile)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "{:>12}  {:>6}  {:>10}  FRAME",
        "SELF(us)", "PCT", "COUNT"
    );
    for r in rows {
        let count = r.count.map_or_else(|| "-".to_owned(), |c| c.to_string());
        let _ = writeln!(
            out,
            "{:>12}  {:>5.1}%  {:>10}  {}",
            r.self_us, r.pct, count, r.path
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_telemetry::{Clock, Profiler};

    fn profile() -> Profile {
        let mut p = Profiler::enabled(Clock::tick(1.0));
        p.enter("root"); // 0
        p.enter("hot"); // 1
        p.enter("inner"); // 2
        p.exit(); // 3: inner self 1
        p.exit(); // 4: hot total 3 self 2
        p.enter("cold"); // 5
        p.exit(); // 6: cold self 1
        p.exit(); // 7: root total 7 self 3
        p.snapshot()
    }

    #[test]
    fn hotspots_rank_by_self_time() {
        let spots = hotspots(&profile(), 10);
        assert_eq!(spots[0].path, "root");
        assert_eq!(spots[0].self_us, 3_000_000);
        assert_eq!(spots[0].count, Some(1));
        assert_eq!(spots[1].path, "root;hot");
        assert_eq!(spots[1].self_us, 2_000_000);
        // Total self = 7 s; root owns 3/7.
        assert!((spots[0].pct - 3.0 * 100.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn top_n_truncates() {
        assert_eq!(hotspots(&profile(), 2).len(), 2);
        assert_eq!(hotspots(&profile(), 0).len(), 0);
    }

    #[test]
    fn ties_break_by_path() {
        let lines = vec![
            FoldedLine {
                path: "b".into(),
                value: 5,
            },
            FoldedLine {
                path: "a".into(),
                value: 5,
            },
        ];
        let spots = hotspots_folded(&lines, 10);
        assert_eq!(spots[0].path, "a");
        assert_eq!(spots[0].count, None);
    }

    #[test]
    fn table_renders_every_row() {
        let text = render_table(&hotspots(&profile(), 10));
        assert!(text.contains("FRAME"));
        assert!(text.contains("root;hot;inner"));
        assert_eq!(text.lines().count(), 5, "header + four frames");
        assert_eq!(render_table(&[]), "(empty profile)\n");
    }

    #[test]
    fn all_zero_profile_reports_zero_pct() {
        let lines = vec![FoldedLine {
            path: "x".into(),
            value: 0,
        }];
        let spots = hotspots_folded(&lines, 1);
        assert_eq!(spots[0].pct, 0.0);
    }
}
