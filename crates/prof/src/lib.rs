//! `srlr-prof`: profile analysis for the workspace's self-profiling
//! layer.
//!
//! `srlr-telemetry`'s [`Profiler`](srlr_telemetry::Profiler) produces
//! aggregated call trees ([`Profile`](srlr_telemetry::Profile)); this
//! crate turns them into artifacts and verdicts:
//!
//! * [`folded`] — folded-stack rendering (`frame;frame value` lines,
//!   the format speedscope and inferno/`flamegraph.pl` load directly),
//!   plus a parser for reading folded files back.
//! * [`hotspot`] — top-N self-time attribution tables, the numbers an
//!   optimization PR argues from.
//! * [`diff`] — structured comparison of two profiles or two
//!   `RunReport`/`BENCH_*.json` snapshots with relative tolerance
//!   bands; drives the `srlr bench-diff` CLI and the CI
//!   `perf-regression` gate (exit 1 on regression, 2 on usage, 0 when
//!   clean — the workspace-wide contract).
//!
//! The crate is deliberately a *consumer*: it depends only on
//! `srlr-telemetry` and never touches the clock itself, so analysis is
//! a pure function of its inputs.

pub mod diff;
pub mod folded;
pub mod hotspot;

pub use diff::{
    diff_flat, diff_profiles, diff_reports, DiffEntry, DiffKind, DiffOptions, DiffReport,
};
pub use folded::{fold, fold_lines, parse_folded, FoldedLine};
pub use hotspot::{hotspots, hotspots_folded, render_table, Hotspot};
