//! Structured diff of two profiles or two `RunReport`/`BENCH_*.json`
//! snapshots, with tolerance bands — the engine behind `srlr
//! bench-diff` and the CI `perf-regression` gate.
//!
//! Both inputs are flattened to `dotted.path → scalar` maps; the diff
//! reports keys that appeared, disappeared, or changed. A numeric
//! change is within tolerance when
//!
//! ```text
//! |new − old| ≤ abs_tol + rel_tol · max(|old|, |new|)
//! ```
//!
//! so `rel_tol` bands machine-dependent throughput numbers while
//! `abs_tol = rel_tol = 0` gates deterministic metrics exactly. Keys
//! matching an ignore pattern (substring) are reported but never count
//! as regressions — CI uses this for `dice_per_second`-style timings
//! that are honest measurements yet meaningless to compare across
//! machines. Added/removed keys are regressions by design: a bench
//! that grows or loses a metric must refresh its committed snapshot in
//! the same PR.

use srlr_telemetry::json::{self, Json};
use srlr_telemetry::Profile;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tolerances and exemptions for a diff.
#[derive(Debug, Clone, Default)]
pub struct DiffOptions {
    /// Relative tolerance (fraction of the larger magnitude).
    pub rel_tol: f64,
    /// Absolute tolerance.
    pub abs_tol: f64,
    /// Substring patterns; matching keys never regress.
    pub ignore: Vec<String>,
}

/// A flattened scalar leaf.
#[derive(Debug, Clone, PartialEq)]
enum Flat {
    Num(f64),
    Text(String),
}

/// What happened to one key.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffKind {
    /// Key only in the new input.
    Added,
    /// Key only in the old input.
    Removed,
    /// Numeric change with its relative deviation.
    Changed {
        /// Old value.
        old: f64,
        /// New value.
        new: f64,
        /// `|new − old| / max(|old|, |new|)` (0 when both are 0).
        rel: f64,
    },
    /// Non-numeric change (string, or a type flip).
    TextChanged {
        /// Old rendering.
        old: String,
        /// New rendering.
        new: String,
    },
}

/// One diff finding.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted key path.
    pub key: String,
    /// The change.
    pub kind: DiffKind,
    /// Whether the change sits inside the tolerance band.
    pub within: bool,
    /// Whether an ignore pattern exempts this key.
    pub ignored: bool,
}

impl DiffEntry {
    /// Whether this entry fails the gate.
    pub fn regresses(&self) -> bool {
        !self.within && !self.ignored
    }
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every differing key (identical keys are counted, not listed).
    pub entries: Vec<DiffEntry>,
    /// Keys present in both inputs.
    pub compared: usize,
}

impl DiffReport {
    /// Whether any entry fails the gate (CLI exit 1).
    pub fn regressed(&self) -> bool {
        self.entries.iter().any(DiffEntry::regresses)
    }

    /// Entries failing the gate.
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regresses()).collect()
    }

    /// Human-readable summary, one line per differing key, ending with
    /// a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let status = if e.regresses() {
                "FAIL"
            } else if e.ignored {
                "SKIP"
            } else {
                "ok"
            };
            match &e.kind {
                DiffKind::Added => {
                    let _ = writeln!(out, "{status:>4}  {}: added in new", e.key);
                }
                DiffKind::Removed => {
                    let _ = writeln!(out, "{status:>4}  {}: removed in new", e.key);
                }
                DiffKind::Changed { old, new, rel } => {
                    let _ = writeln!(
                        out,
                        "{status:>4}  {}: {old} -> {new} (rel {:.3e})",
                        e.key, rel
                    );
                }
                DiffKind::TextChanged { old, new } => {
                    let _ = writeln!(out, "{status:>4}  {}: \"{old}\" -> \"{new}\"", e.key);
                }
            }
        }
        let verdict = if self.regressed() {
            "REGRESSED"
        } else {
            "within tolerance"
        };
        let _ = writeln!(
            out,
            "bench-diff: {} keys compared, {} differ, {} regress — {verdict}",
            self.compared,
            self.entries.len(),
            self.regressions().len()
        );
        out
    }
}

fn flatten_into(doc: &Json, prefix: &str, out: &mut BTreeMap<String, Flat>) {
    let key = |k: &str| {
        if prefix.is_empty() {
            k.to_owned()
        } else {
            format!("{prefix}.{k}")
        }
    };
    match doc {
        Json::Obj(map) => {
            for (k, v) in map {
                flatten_into(v, &key(k), out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_into(v, &key(&i.to_string()), out);
            }
        }
        Json::Num(v) => {
            out.insert(prefix.to_owned(), Flat::Num(*v));
        }
        Json::Str(s) => {
            out.insert(prefix.to_owned(), Flat::Text(s.clone()));
        }
        Json::Bool(b) => {
            out.insert(prefix.to_owned(), Flat::Text(b.to_string()));
        }
        Json::Null => {
            out.insert(prefix.to_owned(), Flat::Text("null".to_owned()));
        }
    }
}

fn flatten_doc(doc: &Json) -> BTreeMap<String, Flat> {
    let mut out = BTreeMap::new();
    flatten_into(doc, "", &mut out);
    out
}

/// Flattens a [`Profile`] to the same keyspace the JSON diff uses:
/// `<path>.count`, `<path>.total_s`, `<path>.self_s` per node, plus
/// `clock`.
fn flatten_profile(p: &Profile) -> BTreeMap<String, Flat> {
    let mut out = BTreeMap::new();
    out.insert("clock".to_owned(), Flat::Text(p.clock.clone()));
    for (i, n) in p.nodes.iter().enumerate() {
        let path = p.path(i);
        out.insert(format!("{path}.count"), Flat::Num(n.count as f64));
        out.insert(format!("{path}.total_s"), Flat::Num(n.total_s));
        out.insert(format!("{path}.self_s"), Flat::Num(n.self_s));
    }
    out
}

fn diff_maps(
    old: &BTreeMap<String, Flat>,
    new: &BTreeMap<String, Flat>,
    opts: &DiffOptions,
) -> DiffReport {
    let ignored = |key: &str| opts.ignore.iter().any(|p| !p.is_empty() && key.contains(p));
    let mut report = DiffReport::default();
    for (key, ov) in old {
        match new.get(key) {
            None => report.entries.push(DiffEntry {
                key: key.clone(),
                kind: DiffKind::Removed,
                within: false,
                ignored: ignored(key),
            }),
            Some(nv) => {
                report.compared += 1;
                match (ov, nv) {
                    (Flat::Num(o), Flat::Num(n)) => {
                        if o.to_bits() != n.to_bits() {
                            let scale = o.abs().max(n.abs());
                            let dev = (n - o).abs();
                            let rel = if scale > 0.0 { dev / scale } else { 0.0 };
                            let within = dev <= opts.abs_tol + opts.rel_tol * scale;
                            report.entries.push(DiffEntry {
                                key: key.clone(),
                                kind: DiffKind::Changed {
                                    old: *o,
                                    new: *n,
                                    rel,
                                },
                                within,
                                ignored: ignored(key),
                            });
                        }
                    }
                    (o, n) => {
                        if o != n {
                            report.entries.push(DiffEntry {
                                key: key.clone(),
                                kind: DiffKind::TextChanged {
                                    old: render_flat(o),
                                    new: render_flat(n),
                                },
                                within: false,
                                ignored: ignored(key),
                            });
                        }
                    }
                }
            }
        }
    }
    for key in new.keys() {
        if !old.contains_key(key) {
            report.entries.push(DiffEntry {
                key: key.clone(),
                kind: DiffKind::Added,
                within: false,
                ignored: ignored(key),
            });
        }
    }
    report.entries.sort_by(|a, b| a.key.cmp(&b.key));
    report
}

fn render_flat(f: &Flat) -> String {
    match f {
        Flat::Num(v) => v.to_string(),
        Flat::Text(s) => s.clone(),
    }
}

/// Diffs two JSON documents (run reports, bench snapshots, or any
/// scalar-leaved JSON) already parsed.
pub fn diff_flat(old: &Json, new: &Json, opts: &DiffOptions) -> DiffReport {
    diff_maps(&flatten_doc(old), &flatten_doc(new), opts)
}

/// Diffs two report/snapshot files by text.
///
/// # Errors
///
/// Returns which input failed to parse and why.
pub fn diff_reports(
    old_text: &str,
    new_text: &str,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let old = json::parse(old_text).map_err(|e| format!("old input: {e}"))?;
    let new = json::parse(new_text).map_err(|e| format!("new input: {e}"))?;
    Ok(diff_flat(&old, &new, opts))
}

/// Diffs two profiles over `<path>.{count,total_s,self_s}` keys —
/// structure changes (paths appearing/disappearing, count changes)
/// regress under zero tolerance; timing keys band like any metric.
pub fn diff_profiles(old: &Profile, new: &Profile, opts: &DiffOptions) -> DiffReport {
    diff_maps(&flatten_profile(old), &flatten_profile(new), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_telemetry::{Clock, Profiler};

    fn opts(rel: f64) -> DiffOptions {
        DiffOptions {
            rel_tol: rel,
            ..DiffOptions::default()
        }
    }

    #[test]
    fn identical_documents_do_not_regress() {
        let text = "{\"a\": {\"b\": 1.5, \"c\": \"x\"}, \"n\": [1, 2]}";
        let r = diff_reports(text, text, &opts(0.0)).expect("parses");
        assert!(!r.regressed());
        assert!(r.entries.is_empty());
        assert_eq!(r.compared, 4);
    }

    #[test]
    fn out_of_band_change_regresses() {
        let r = diff_reports("{\"m\": 100}", "{\"m\": 90}", &opts(0.05)).expect("parses");
        assert!(r.regressed());
        let e = &r.entries[0];
        assert!(matches!(e.kind, DiffKind::Changed { rel, .. } if (rel - 0.1).abs() < 1e-12));
    }

    #[test]
    fn in_band_change_passes_but_is_reported() {
        let r = diff_reports("{\"m\": 100}", "{\"m\": 99}", &opts(0.05)).expect("parses");
        assert!(!r.regressed());
        assert_eq!(r.entries.len(), 1, "the change is still listed");
        assert!(r.entries[0].within);
    }

    #[test]
    fn added_and_removed_keys_regress() {
        let r = diff_reports("{\"a\": 1, \"b\": 2}", "{\"a\": 1, \"c\": 3}", &opts(1.0))
            .expect("parses");
        assert!(r.regressed());
        let kinds: Vec<&DiffKind> = r.entries.iter().map(|e| &e.kind).collect();
        assert!(kinds.contains(&&DiffKind::Removed));
        assert!(kinds.contains(&&DiffKind::Added));
    }

    #[test]
    fn ignore_patterns_exempt_keys_entirely() {
        let o = DiffOptions {
            rel_tol: 0.0,
            abs_tol: 0.0,
            ignore: vec!["dice_per_second".into(), "threads".into()],
        };
        let r = diff_reports(
            "{\"sections\": {\"x\": {\"dice_per_second\": 5000}}, \"params\": {\"available_threads\": 1}}",
            "{\"sections\": {\"x\": {\"dice_per_second\": 9000}}, \"params\": {\"available_threads\": 8}}",
            &o,
        )
        .expect("parses");
        assert!(!r.regressed(), "ignored keys never gate: {}", r.render());
        assert_eq!(r.entries.len(), 2, "but they are still reported");
        assert!(r.entries.iter().all(|e| e.ignored));
    }

    #[test]
    fn ignored_removed_keys_do_not_gate() {
        let o = DiffOptions {
            ignore: vec!["speedup".into()],
            ..DiffOptions::default()
        };
        let r = diff_reports("{\"speedup\": 26.7}", "{}", &o).expect("parses");
        assert!(!r.regressed());
    }

    #[test]
    fn zero_to_zero_is_equal_and_zero_to_small_uses_abs_tol() {
        let r = diff_reports("{\"m\": 0}", "{\"m\": 0.0}", &opts(0.0)).expect("parses");
        assert!(r.entries.is_empty(), "0 == 0.0 bitwise");
        let r = diff_reports("{\"m\": 0}", "{\"m\": 1e-12}", &opts(0.5)).expect("parses");
        assert!(r.regressed(), "rel tol alone cannot admit a change from 0");
        let o = DiffOptions {
            rel_tol: 0.0,
            abs_tol: 1e-9,
            ignore: Vec::new(),
        };
        let r = diff_reports("{\"m\": 0}", "{\"m\": 1e-12}", &o).expect("parses");
        assert!(!r.regressed(), "abs tol admits it");
    }

    #[test]
    fn type_flips_and_string_changes_regress() {
        let r = diff_reports("{\"v\": \"a\"}", "{\"v\": \"b\"}", &opts(1.0)).expect("parses");
        assert!(r.regressed());
        let r = diff_reports("{\"v\": 1}", "{\"v\": \"1\"}", &opts(1.0)).expect("parses");
        assert!(r.regressed(), "number -> string is a schema break");
        let r = diff_reports("{\"v\": true}", "{\"v\": false}", &opts(1.0)).expect("parses");
        assert!(r.regressed());
    }

    #[test]
    fn parse_errors_name_the_side() {
        assert!(diff_reports("{", "{}", &opts(0.0))
            .expect_err("bad old")
            .starts_with("old input"));
        assert!(diff_reports("{}", "[1,", &opts(0.0))
            .expect_err("bad new")
            .starts_with("new input"));
    }

    #[test]
    fn profile_diff_sees_structure_and_timing() {
        let make = |extra: bool, slow: f64| {
            let mut p = Profiler::enabled(Clock::tick(slow));
            p.enter("a");
            if extra {
                p.enter("b");
                p.exit();
            }
            p.exit();
            p.snapshot()
        };
        let r = diff_profiles(&make(false, 1.0), &make(true, 1.0), &opts(0.0));
        assert!(r.regressed(), "new frame path is a structural change");
        let r = diff_profiles(&make(false, 1.0), &make(false, 2.0), &opts(0.0));
        assert!(r.regressed(), "timing drift caught at zero tolerance");
        let r = diff_profiles(&make(false, 1.0), &make(false, 2.0), &opts(0.6));
        assert!(!r.regressed(), "banded timing drift passes");
    }

    #[test]
    fn render_summarizes_the_verdict() {
        let r = diff_reports("{\"m\": 1}", "{\"m\": 2}", &opts(0.0)).expect("parses");
        let text = r.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("REGRESSED"));
        let r = diff_reports("{\"m\": 1}", "{\"m\": 1}", &opts(0.0)).expect("parses");
        assert!(r.render().contains("within tolerance"));
    }
}
