//! Folded-stack rendering and parsing.
//!
//! One line per call-tree node: the root-to-node path joined with `;`,
//! a space, and the node's **self** value as a non-negative integer —
//! the interchange format of Brendan Gregg's stackcollapse tools, which
//! speedscope opens directly and inferno turns into flame graphs.
//!
//! Values are microseconds of self time, rounded. With the
//! deterministic tick clock a profile's timings are exact multiples of
//! the tick, so folded output is byte-stable and golden-testable;
//! wall-clock profiles produce the same *lines* with machine-dependent
//! values. Lines are emitted in sorted path order (folded consumers are
//! order-insensitive; sorting keeps the artifact deterministic).

use srlr_telemetry::Profile;

/// One parsed folded-stack line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedLine {
    /// `;`-joined root-to-frame path.
    pub path: String,
    /// Self value (microseconds for this workspace's profiles).
    pub value: u64,
}

/// The folded lines of `profile`, one per node, sorted by path.
/// Count-only frames (zero self time) keep their zero-valued lines so
/// the full structure survives the round trip.
pub fn fold_lines(profile: &Profile) -> Vec<FoldedLine> {
    let mut lines: Vec<FoldedLine> = profile
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| FoldedLine {
            path: profile.path(i),
            value: to_micros(n.self_s),
        })
        .collect();
    lines.sort_by(|a, b| a.path.cmp(&b.path));
    lines
}

/// Renders `profile` as folded-stack text.
pub fn fold(profile: &Profile) -> String {
    let mut out = String::new();
    for line in fold_lines(profile) {
        out.push_str(&line.path);
        out.push(' ');
        out.push_str(&line.value.to_string());
        out.push('\n');
    }
    out
}

/// Parses folded-stack text (as produced by [`fold`] or any
/// stackcollapse tool): `path value` per line, blank lines ignored.
///
/// # Errors
///
/// Returns a description naming the first malformed line.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedLine>, String> {
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let Some((path, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: missing value field", i + 1));
        };
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: `{value}` is not a non-negative integer", i + 1))?;
        if path.is_empty() {
            return Err(format!("line {}: empty frame path", i + 1));
        }
        lines.push(FoldedLine {
            path: path.to_owned(),
            value,
        });
    }
    Ok(lines)
}

/// Seconds → rounded non-negative microseconds.
fn to_micros(seconds: f64) -> u64 {
    let us = (seconds * 1e6).round();
    if us.is_finite() && us > 0.0 {
        us as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_telemetry::{Clock, Profiler};

    fn sample_profile() -> Profile {
        let mut p = Profiler::enabled(Clock::tick(0.5));
        p.enter("mc.batch"); // t=0
        p.enter("elaborate"); // t=0.5
        p.exit(); // t=1.0: elaborate self 0.5
        p.enter("kernel"); // t=1.5
        p.enter("bit_slot"); // t=2.0
        p.exit(); // t=2.5: bit_slot 0.5
        p.count("lane_kill");
        p.exit(); // t=3.0: kernel total 1.5, self 1.0
        p.exit(); // t=3.5: batch total 3.5, self 1.5
        p.snapshot()
    }

    #[test]
    fn folded_lines_carry_self_time_in_micros() {
        let lines = fold_lines(&sample_profile());
        let get = |path: &str| {
            lines
                .iter()
                .find(|l| l.path == path)
                .unwrap_or_else(|| panic!("missing {path}"))
                .value
        };
        assert_eq!(get("mc.batch"), 1_500_000);
        assert_eq!(get("mc.batch;elaborate"), 500_000);
        assert_eq!(get("mc.batch;kernel"), 1_000_000);
        assert_eq!(get("mc.batch;kernel;bit_slot"), 500_000);
        assert_eq!(get("mc.batch;kernel;lane_kill"), 0, "count-only frame");
    }

    #[test]
    fn fold_text_is_sorted_and_round_trips() {
        let text = fold(&sample_profile());
        let mut paths: Vec<&str> = text
            .lines()
            .filter_map(|l| l.rsplit_once(' ').map(|(p, _)| p))
            .collect();
        let sorted = {
            let mut s = paths.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(paths, sorted, "folded output is path-sorted");
        paths.clear();
        let parsed = parse_folded(&text).expect("own output parses");
        assert_eq!(parsed, fold_lines(&sample_profile()));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_folded("no_value_here").is_err());
        assert!(parse_folded("frame -3").is_err());
        assert!(parse_folded("frame 1.5").is_err());
        assert!(parse_folded(" 12").is_err(), "empty path");
        assert_eq!(parse_folded("\n\n").expect("blank ok"), Vec::new());
    }

    #[test]
    fn parser_accepts_spaces_in_frame_names() {
        // rsplit: only the trailing field is the value.
        let lines = parse_folded("a b;c d 42\n").expect("parses");
        assert_eq!(lines[0].path, "a b;c d");
        assert_eq!(lines[0].value, 42);
    }

    #[test]
    fn negative_and_non_finite_self_times_clamp_to_zero() {
        assert_eq!(to_micros(-1.0), 0);
        assert_eq!(to_micros(f64::NAN), 0);
        assert_eq!(to_micros(0.4e-6), 0);
        assert_eq!(to_micros(0.6e-6), 1);
    }

    #[test]
    fn empty_profile_folds_to_empty_text() {
        let p = Profiler::disabled();
        assert_eq!(fold(&p.snapshot()), "");
    }
}
