//! Dependency-free deterministic random streams.
//!
//! Every statistical experiment in the workspace must be a pure function
//! of its seed so that results are reproducible — and, crucially, so that
//! trial `N` of a Monte Carlo run can be computed without first drawing
//! trials `0..N-1`. This crate provides the two building blocks:
//!
//! * [`stream_seed`] — a SplitMix64-style mix of `(seed, index)` that
//!   derives an independent substream key per trial, lane, or cell, and
//! * [`Xoshiro256pp`] — a small, fast, seedable generator (xoshiro256++)
//!   producing the actual `u64`/`f64` variates.
//!
//! Together they make `rng_for(seed, trial)` a counter-based derivation:
//! adjacent indices yield decorrelated streams, identical `(seed, index)`
//! pairs yield identical streams, and no shared mutable state links one
//! trial to the next — exactly what a deterministic parallel fan-out
//! needs.
//!
//! # Examples
//!
//! ```
//! use srlr_rng::Xoshiro256pp;
//!
//! let a: Vec<u64> = Xoshiro256pp::for_stream(42, 7).take(4).collect();
//! let b: Vec<u64> = Xoshiro256pp::for_stream(42, 7).take(4).collect();
//! let c: Vec<u64> = Xoshiro256pp::for_stream(42, 8).take(4).collect();
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The golden-ratio increment of SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advances a SplitMix64 state and returns the next output.
///
/// This is the reference algorithm of Steele, Lea and Flood (the
/// `splittable` mix used by `java.util.SplittableRandom`): a Weyl
/// sequence on the golden-ratio gamma followed by a 64-bit finalizer
/// with full avalanche.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the key of substream `index` of the master `seed`.
///
/// The derivation is counter-based — a SplitMix64 finalizer over a
/// combination of `seed` and `index` — so any substream key is computed
/// in O(1), independent of every other index. Equal inputs give equal
/// keys; changing either input by one bit flips about half the output
/// bits.
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    // Spread the index over the whole state space before folding in the
    // seed, so that (seed, index) and (seed + 1, index - 1) style
    // collisions cannot occur along the Weyl line.
    let mut state = seed ^ index.wrapping_add(1).wrapping_mul(0x6A09_E667_F3BC_C909);
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

/// A xoshiro256++ generator (Blackman & Vigna, 2019): 256 bits of state,
/// a 1-cycle output mix, and equidistribution in 4 dimensions — more
/// than enough for the circuit Monte Carlo while staying a handful of
/// ALU operations per draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from `seed` via SplitMix64, the
    /// seeding procedure the xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // The all-zero state is a fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = GOLDEN_GAMMA;
        }
        Self { s }
    }

    /// The generator for substream `index` of `seed` — shorthand for
    /// `Xoshiro256pp::new(stream_seed(seed, index))`.
    pub fn for_stream(seed: u64, index: u64) -> Self {
        Self::new(stream_seed(seed, index))
    }

    /// Draws the next `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws a uniform `f64` in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform index in `0..n` (fixed-point multiply; the bias
    /// of at most `n / 2^64` is far below anything observable).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw from an empty range");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

impl Iterator for Xoshiro256pp {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the reference C implementation.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = Xoshiro256pp::for_stream(1, 2).take(16).collect();
        let b: Vec<u64> = Xoshiro256pp::for_stream(1, 2).take(16).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_streams_decorrelate() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for index in [0u64, 1, 999, u64::MAX - 1] {
                assert_ne!(
                    stream_seed(seed, index),
                    stream_seed(seed, index + 1),
                    "collision at seed {seed}, index {index}"
                );
            }
        }
    }

    #[test]
    fn stream_seed_avalanches() {
        // One-bit input changes should flip roughly half the output bits.
        let base = stream_seed(42, 42);
        for bit in 0..64 {
            let flipped = stream_seed(42 ^ (1 << bit), 42);
            let distance = (base ^ flipped).count_ones();
            assert!((8..=56).contains(&distance), "weak avalanche: {distance}");
        }
    }

    #[test]
    fn f64_is_unit_interval_uniform() {
        let mut rng = Xoshiro256pp::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut rng = Xoshiro256pp::new(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.index(8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} saw {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_range_rejected() {
        let _ = Xoshiro256pp::new(0).index(0);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            Xoshiro256pp::new(1).next_u64(),
            Xoshiro256pp::new(2).next_u64()
        );
    }
}
