//! Plain-text report formatting shared by the bench harnesses, plus the
//! machine-readable run-report sink.

use srlr_telemetry::RunReport;
use std::path::PathBuf;

/// Directory the JSON run reports land in: `SRLR_REPORT_DIR` when set,
/// otherwise `target/srlr-reports` under the working directory.
pub fn report_dir() -> PathBuf {
    std::env::var_os("SRLR_REPORT_DIR")
        .map_or_else(|| PathBuf::from("target/srlr-reports"), PathBuf::from)
}

/// Writes `report` as `<report_dir>/<name>.json` alongside the ASCII
/// output and prints where it went. A failure (e.g. a read-only
/// directory) is printed, not fatal: the ASCII tables still stand on
/// their own.
pub fn emit_run_report(report: &RunReport) {
    let dir = report_dir();
    let path = dir.join(format!("{}.json", report.name()));
    let outcome = std::fs::create_dir_all(&dir).and_then(|()| {
        let mut file = std::fs::File::create(&path)?;
        report.write_to(&mut file)
    });
    match outcome {
        Ok(()) => println!("\nrun report: {}", path.display()),
        Err(e) => println!("\nrun report NOT written to {}: {e}", path.display()),
    }
}

/// Directory committed benchmark snapshots land in:
/// `SRLR_BENCH_SNAPSHOT_DIR` when set, otherwise the workspace root
/// (two levels above this crate's manifest).
pub fn snapshot_dir() -> PathBuf {
    std::env::var_os("SRLR_BENCH_SNAPSHOT_DIR").map_or_else(
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    )
}

/// Additionally writes `report` as `BENCH_<name>.json` in
/// [`snapshot_dir`] — the committed, schema-versioned performance
/// snapshot (see `EXPERIMENTS.md` for the regeneration recipe). Like
/// [`emit_run_report`], failures are printed, not fatal.
pub fn emit_bench_snapshot(report: &RunReport) {
    let dir = snapshot_dir();
    let path = dir.join(format!("BENCH_{}.json", report.name()));
    let outcome = std::fs::create_dir_all(&dir).and_then(|()| {
        let mut file = std::fs::File::create(&path)?;
        report.write_to(&mut file)
    });
    match outcome {
        Ok(()) => println!("bench snapshot: {}", path.display()),
        Err(e) => println!("bench snapshot NOT written to {}: {e}", path.display()),
    }
}

/// Prints a boxed section header.
pub fn section(title: &str) {
    let bar = "=".repeat(title.len() + 4);
    println!("\n{bar}\n| {title} |\n{bar}");
}

/// Prints a `paper vs measured` line with the relative deviation.
pub fn paper_vs_measured(label: &str, unit: &str, paper: f64, measured: f64) {
    // srlr-lint: allow(float-eq, reason = "exact-zero sentinel guard against division by zero, not a tolerance comparison")
    let dev = if paper != 0.0 {
        format!("{:+.1} %", (measured / paper - 1.0) * 100.0)
    } else {
        "n/a".to_owned()
    };
    println!(
        "{label:<44} paper {paper:>10.3} {unit:<12} measured {measured:>10.3} {unit:<12} ({dev})"
    );
}

/// One scatter series: label, plot symbol and `(x, y)` points.
pub type ScatterSeries<'a> = (&'a str, char, Vec<(f64, f64)>);

/// Renders a simple ASCII scatter of `(x, y)` series on log-ish axes
/// scaled to the data, one symbol per series.
pub fn ascii_scatter(series: &[ScatterSeries<'_>], width: usize, height: usize) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let x_span = (x1 - x0).max(1e-12);
    let y_span = (y1 - y0).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (_, symbol, pts) in series {
        for &(x, y) in pts {
            let col = ((x - x0) / x_span * (width - 1) as f64).round() as usize;
            let row = ((y1 - y) / y_span * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = *symbol;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("y: {y1:.0} (top) .. {y0:.0} (bottom)\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("x: {x0:.2} .. {x1:.2}\n"));
    for (label, symbol, _) in series {
        out.push_str(&format!("  {symbol} = {label}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_all_series_symbols() {
        let s = ascii_scatter(
            &[
                ("ours", '*', vec![(1.0, 400.0), (6.8, 404.0)]),
                ("prior", 'o', vec![(6.0, 561.0)]),
            ],
            40,
            10,
        );
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("ours"));
        assert_eq!(s.lines().count(), 1 + 10 + 1 + 2);
    }

    #[test]
    fn scatter_handles_empty() {
        assert_eq!(ascii_scatter(&[], 10, 5), "(no data)\n");
    }
}
