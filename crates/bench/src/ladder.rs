//! Thread ladders for the scaling benchmarks.

/// The `[1, 2, 4, available]` measurement ladder, sorted and
/// deduplicated.
///
/// The naive literal list repeats an entry whenever the machine has 4 or
/// fewer threads (e.g. `[1, 2, 4, 4]` on a 4-thread box, `[1, 2, 4, 1]`
/// on a single-core CI runner), which used to make the per-rung
/// `threads.NNN` run-report metrics collide: the duplicate measurement
/// silently overwrote the first one. Deduplicating here keeps one
/// measurement — and one report key — per distinct thread count.
/// `available` is clamped to at least 1.
pub fn thread_ladder(available: usize) -> Vec<usize> {
    let mut ladder = vec![1, 2, 4, available.max(1)];
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_no_duplicate_rungs_on_small_machines() {
        // Regression: ≤4-thread machines used to produce duplicate rungs
        // whose report metrics overwrote each other.
        for available in [0usize, 1, 2, 3, 4] {
            let ladder = thread_ladder(available);
            let mut unique = ladder.clone();
            unique.dedup();
            assert_eq!(ladder, unique, "duplicates for available={available}");
        }
    }

    #[test]
    fn ladder_is_sorted_and_covers_the_machine() {
        let ladder = thread_ladder(64);
        assert_eq!(ladder, vec![1, 2, 4, 64]);
        assert!(thread_ladder(3).contains(&3));
        assert_eq!(thread_ladder(1), vec![1, 2, 4]);
        assert_eq!(thread_ladder(4), vec![1, 2, 4]);
    }

    #[test]
    fn report_keys_from_the_ladder_are_unique() {
        // The exact failure mode: formatted metric keys must be unique.
        for available in 0..=16usize {
            let keys: Vec<String> = thread_ladder(available)
                .iter()
                .map(|t| format!("threads.{t:03}"))
                .collect();
            let mut unique = keys.clone();
            unique.dedup();
            assert_eq!(keys, unique, "key collision for available={available}");
        }
    }
}
