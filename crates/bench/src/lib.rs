//! Shared experiment harnesses behind the Criterion benches.
//!
//! Every table and figure of the paper has a bench target that (a) prints
//! the regenerated rows/series and (b) times the underlying kernel. The
//! figure/table assembly lives here so the integration tests and examples
//! can reuse it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig8;
pub mod ladder;
pub mod report;

pub use fig8::{fig8_measured_series, fig8_published_points, Fig8Point};
pub use ladder::thread_ladder;
