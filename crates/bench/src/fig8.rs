//! Fig. 8: 1 cm link-traversal energy versus bandwidth density.
//!
//! The measured series sweeps the SRLR link's wire spacing (tighter pitch
//! = higher bandwidth density but more coupling capacitance = more
//! energy); each geometry is driven at its own maximum error-free data
//! rate, exactly how the paper characterises the silicon. The published
//! points of \[18\]\[25\]\[26\]\[27\] and the paper's own row come from
//! the Table I registry.

use srlr_core::SrlrDesign;
use srlr_link::ber::max_data_rate;
use srlr_link::{LinkConfig, LinkMetrics, PublishedInterconnect, SrlrLink};
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::{DataRate, Length};

/// One Fig. 8 point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Point {
    /// Series / design label.
    pub label: String,
    /// Bandwidth density in Gb/s/um.
    pub bandwidth_density_gbps_um: f64,
    /// 10 mm link-traversal energy in fJ/bit/cm.
    pub energy_fj_per_bit_cm: f64,
}

/// The published prior-work points plus the paper's own.
pub fn fig8_published_points() -> Vec<Fig8Point> {
    let mut pts: Vec<Fig8Point> = PublishedInterconnect::prior_works()
        .into_iter()
        .map(|p| Fig8Point {
            label: p.label.to_owned(),
            bandwidth_density_gbps_um: p.bandwidth_density.gigabits_per_second_per_micrometer(),
            energy_fj_per_bit_cm: p.energy.femtojoules_per_bit_per_centimeter(),
        })
        .collect();
    let us = PublishedInterconnect::this_work_published();
    pts.push(Fig8Point {
        label: us.label.to_owned(),
        bandwidth_density_gbps_um: us.bandwidth_density.gigabits_per_second_per_micrometer(),
        energy_fj_per_bit_cm: us.energy.femtojoules_per_bit_per_centimeter(),
    });
    pts
}

/// Derating from the simulated failure-cliff rate to a rated operating
/// point. The max-rate search finds the exact edge where stress patterns
/// start failing on a nominal die; silicon is rated with margin for
/// jitter, supply noise and BER < 1e-9 across dice. 0.7 x cliff puts the
/// paper-geometry point at ≈4.2 Gb/s against the measured 4.1 Gb/s.
pub const RATE_MARGIN: f64 = 0.7;

/// Measures the SRLR link across wire spacings, each rated at
/// [`RATE_MARGIN`] of its maximum error-free data rate.
pub fn fig8_measured_series(tech: &Technology, spacings_um: &[f64]) -> Vec<Fig8Point> {
    let base = SrlrDesign::paper_proposed(tech);
    let nominal = GlobalVariation::nominal();
    spacings_um
        .iter()
        .filter_map(|&space_um| {
            let wire = tech.wire.with_space(Length::from_micrometers(space_um));
            let design = SrlrDesign {
                wire,
                ..base.clone()
            };
            let cliff = max_data_rate(
                tech,
                &design,
                LinkConfig::paper_default(),
                &nominal,
                DataRate::from_gigabits_per_second(0.5),
                DataRate::from_gigabits_per_second(12.0),
                DataRate::from_gigabits_per_second(0.1),
            )?;
            let rate = cliff * RATE_MARGIN;
            let config = LinkConfig::paper_default().with_data_rate(rate);
            let link = SrlrLink::on_die(tech, &design, config, &nominal);
            let metrics = LinkMetrics::measure_with_pitch(&link, wire.pitch());
            Some(Fig8Point {
                label: format!("SRLR (space {space_um:.2} um)"),
                bandwidth_density_gbps_um: metrics
                    .bandwidth_density
                    .gigabits_per_second_per_micrometer(),
                energy_fj_per_bit_cm: metrics.energy.femtojoules_per_bit_per_centimeter(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_points_cover_all_rows() {
        let pts = fig8_published_points();
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().any(|p| p.label.contains("This Work")));
    }

    #[test]
    fn measured_series_shows_the_density_energy_tradeoff() {
        let tech = Technology::soi45();
        let series = fig8_measured_series(&tech, &[0.2, 0.3, 0.5]);
        assert_eq!(series.len(), 3, "every spacing should yield a point");
        // Tighter spacing (first point): higher density, higher energy.
        assert!(
            series[0].bandwidth_density_gbps_um > series[2].bandwidth_density_gbps_um,
            "density must fall with looser spacing"
        );
        assert!(
            series[0].energy_fj_per_bit_cm > series[2].energy_fj_per_bit_cm,
            "energy must fall with looser spacing"
        );
    }

    #[test]
    fn paper_spacing_point_matches_headline() {
        let tech = Technology::soi45();
        let series = fig8_measured_series(&tech, &[0.3]);
        assert_eq!(series.len(), 1);
        let p = &series[0];
        // Near the paper's 6.83 Gb/s/um and 404 fJ/bit/cm corner of the
        // tradeoff (max rate may land slightly off 4.1 Gb/s).
        assert!(
            p.bandwidth_density_gbps_um > 4.0 && p.bandwidth_density_gbps_um < 10.0,
            "density {}",
            p.bandwidth_density_gbps_um
        );
        assert!(
            p.energy_fj_per_bit_cm > 250.0 && p.energy_fj_per_bit_cm < 600.0,
            "energy {}",
            p.energy_fj_per_bit_cm
        );
    }
}
