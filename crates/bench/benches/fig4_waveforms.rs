//! Fig. 4: transient waveforms of one SRLR stage — the low-swing input
//! pulse, node X's discharge/self-reset cycle, the full-swing output and
//! the repeated low-swing pulse 1 mm downstream.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::transient::SrlrTransientFixture;
use srlr_tech::Technology;
use srlr_units::Voltage;

fn print_figure() {
    let tech = Technology::soi45();
    report::section("Fig. 4 — SRLR simulated waveforms (1,0,1 at 4.1 Gb/s, TT, 0.8 V)");
    let waves = SrlrTransientFixture::fig4(&tech);

    println!("\nIN (low-swing input pulses):");
    print!("{}", waves.input.ascii_plot(8, 90));
    println!("\nnode X (discharge on detect, NMOS recharge to VDD-Vth):");
    print!("{}", waves.node_x.ascii_plot(8, 90));
    println!("\nOUT (full-swing self-reset pulses):");
    print!("{}", waves.output.ascii_plot(8, 90));
    println!("\nNEXT IN (repeated low-swing pulses, 1 mm away):");
    print!("{}", waves.next_input.ascii_plot(8, 90));

    report::section("Fig. 4 — measured waveform properties");
    report::paper_vs_measured(
        "node X standby level (VDD - Vth)",
        "V",
        0.55,
        waves
            .node_x
            .value_at(srlr_units::TimeInterval::from_picoseconds(2.0))
            .volts(),
    );
    println!("input peak swing: {} (low swing)", waves.input.peak());
    println!(
        "output peak: {} (full swing), pulses: {}",
        waves.output.peak(),
        waves.output.pulse_widths(Voltage::from_volts(0.4)).len()
    );
    println!(
        "next-stage peak swing: {} (repeated low swing)",
        waves.next_input.peak()
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let tech = Technology::soi45();
    c.bench_function("fig4_transient_simulation", |b| {
        b.iter(|| SrlrTransientFixture::fig4(&tech))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
