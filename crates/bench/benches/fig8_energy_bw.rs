//! Fig. 8: 1 cm link-traversal energy versus bandwidth density — the
//! SRLR spacing sweep against the published silicon-proven interconnects.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::{fig8_measured_series, fig8_published_points, report};
use srlr_tech::Technology;

fn print_figure() {
    let tech = Technology::soi45();
    report::section("Fig. 8 — 1 cm LT energy vs bandwidth density");

    let spacings = [0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.7];
    let measured = fig8_measured_series(&tech, &spacings);
    let published = fig8_published_points();

    println!("\nmeasured SRLR sweep (each geometry rated at 0.7 x its error-free cliff):");
    println!(
        "{:<26} {:>14} {:>16}",
        "design point", "BW [Gb/s/um]", "LT [fJ/bit/cm]"
    );
    for p in &measured {
        println!(
            "{:<26} {:>14.3} {:>16.1}",
            p.label, p.bandwidth_density_gbps_um, p.energy_fj_per_bit_cm
        );
    }
    println!("\npublished silicon points:");
    for p in &published {
        println!(
            "{:<26} {:>14.3} {:>16.1}",
            p.label, p.bandwidth_density_gbps_um, p.energy_fj_per_bit_cm
        );
    }

    let ours: Vec<(f64, f64)> = measured
        .iter()
        .map(|p| (p.bandwidth_density_gbps_um, p.energy_fj_per_bit_cm))
        .collect();
    let prior: Vec<(f64, f64)> = published
        .iter()
        .filter(|p| !p.label.contains("This Work"))
        .map(|p| (p.bandwidth_density_gbps_um, p.energy_fj_per_bit_cm))
        .collect();
    let us_pub: Vec<(f64, f64)> = published
        .iter()
        .filter(|p| p.label.contains("This Work"))
        .map(|p| (p.bandwidth_density_gbps_um, p.energy_fj_per_bit_cm))
        .collect();
    println!(
        "\n{}",
        report::ascii_scatter(
            &[
                ("SRLR measured sweep", '*', ours),
                ("prior works (published)", 'o', prior),
                ("this work (published)", '#', us_pub),
            ],
            78,
            16,
        )
    );
    println!(
        "Shape check: the SRLR curve sits below the differential designs at\n\
         equal density and extends to higher bandwidth density (single-ended\n\
         wiring), with energy rising as spacing tightens — as in the paper."
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let tech = Technology::soi45();
    c.bench_function("fig8_single_spacing_point", |b| {
        b.iter(|| fig8_measured_series(&tech, &[0.3]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
