//! Sec. III-A, eqs. (1)/(2): pulse-width drift across repeater stages at
//! global corners, single vs alternating delay cells; plus the Sec. III-B
//! inverter-driver failure modes on the `11110` worst case.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::{DelayCellDesign, DriverKind, SrlrDesign};
use srlr_link::{LinkConfig, SrlrLink};
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::Voltage;

fn trace_line(design: &SrlrDesign, tech: &Technology, var: &GlobalVariation) -> String {
    let chain = design.instantiate(tech, var, 10);
    chain
        .propagate_trace(chain.nominal_input_pulse())
        .iter()
        .map(|p| {
            if p.is_valid() {
                format!("{:>4.0}", p.width.picoseconds())
            } else {
                "   X".to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn print_tables() {
    let tech = Technology::soi45();
    let base = SrlrDesign::paper_proposed(&tech).with_adaptive_swing(false);

    report::section("Sec. III-A — output pulse widths W_out,n [ps] across 10 stages");
    println!("(fixed bias so the corner bites; X = pulse lost)\n");
    println!("{:>9} {:<12} W_out,0 .. W_out,10", "corner", "delay cell");
    for mv in [0.0, 15.0, 25.0, 35.0, -25.0, -50.0] {
        let var = GlobalVariation {
            dvth_n: Voltage::from_millivolts(mv),
            dvth_p: Voltage::from_millivolts(mv),
            ..GlobalVariation::nominal()
        };
        for (label, cell) in [
            ("single", DelayCellDesign::single_paper()),
            ("alternating", DelayCellDesign::alternating_paper()),
        ] {
            let design = base.with_delay_cell(cell);
            println!(
                "{mv:>+8.0}mV {label:<12} {}",
                trace_line(&design, &tech, &var)
            );
        }
    }
    println!(
        "\nEq. (1): at slow corners the single design's widths shrink\n\
         monotonically (W_out,0 > W_out,1 > ...) until the bit-1 is lost;\n\
         Eq. (2): fast corners widen pulses toward the ISI limit."
    );

    report::section("Sec. III-B — '11110' headroom per output driver at skew corners");
    println!(
        "(highest data rate that still carries the worst-case pattern\n\
         cleanly, and the worst wire residue at 4.1 Gb/s)\n"
    );
    println!(
        "{:<30} {:<22} {:>14} {:>18}",
        "corner", "driver", "max clean rate", "residue @4.1 Gb/s"
    );
    for (corner_label, dn, dp) in [
        ("TT", 0.0, 0.0),
        ("weak PMOS (FS)", -60.0, 60.0),
        ("strong PMOS / weak NMOS (SF)", 60.0, -60.0),
    ] {
        let var = GlobalVariation {
            dvth_n: Voltage::from_millivolts(dn),
            dvth_p: Voltage::from_millivolts(dp),
            ..GlobalVariation::nominal()
        };
        for driver in [DriverKind::NmosBased, DriverKind::Inverter] {
            let design = SrlrDesign::paper_proposed(&tech).with_driver(driver);
            let pattern: Vec<bool> = [true, true, true, true, false].repeat(10);
            let clean = |gbps: f64| {
                let config = LinkConfig::paper_default()
                    .with_data_rate(srlr_units::DataRate::from_gigabits_per_second(gbps));
                let link = SrlrLink::on_die(&tech, &design, config, &var);
                link.transmit(&pattern).received == pattern
            };
            let max_rate = (10..=120)
                .map(|i| f64::from(i) * 0.1)
                .take_while(|&g| clean(g))
                .last();
            let link = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &var);
            let out = link.transmit(&pattern);
            println!(
                "{corner_label:<30} {driver:<22} {:>11} {:>18}",
                max_rate.map_or("< 1 Gb/s".to_owned(), |g| format!("{g:.1} Gb/s")),
                out.max_baseline.to_string()
            );
        }
    }
    println!(
        "\nThe NMOS-based driver's swing is bias-limited, so the strong-PMOS\n\
         over-swing mode disappears and its worst-case headroom exceeds the\n\
         inverter's at the SF skew corner."
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let chain = design.instantiate(&tech, &GlobalVariation::nominal(), 10);
    c.bench_function("chain_propagate_10_stages", |b| {
        b.iter(|| chain.propagate(chain.nominal_input_pulse()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
