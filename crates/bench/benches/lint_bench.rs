//! Throughput and shape of the `srlr-lint` workspace pass: how long the
//! full scan (lex → item tree → expression walk → call graph → rules)
//! takes, and the deterministic counts CI gates.
//!
//! Besides the `target/srlr-reports/lint.json` run report, it writes
//! the committed snapshot `BENCH_lint.json` at the repo root. The
//! counts (files scanned, call-graph size, declared hot roots, fresh
//! violations — which must be zero) are deterministic, so CI's
//! perf-regression job gates them with `srlr bench-diff`; the wall-time
//! key is an honest measurement but meaningless across runners, so the
//! gate ignores it.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_lint::rules::ALL_RULES;
use srlr_lint::semantic::ParsedFile;
use srlr_lint::{exprs, items, semantic, walk, Config};
use srlr_telemetry::{Clock, Value};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Parses every workspace file the way the lint's own scan does, so the
/// call-graph stage can be benched in isolation.
fn parse_workspace(root: &Path) -> Vec<ParsedFile> {
    walk::workspace_files(root)
        .expect("walk workspace")
        .iter()
        .map(|file| {
            let src = std::fs::read_to_string(&file.abs).expect("read source");
            let rel = file.rel.replace('\\', "/");
            let tree = items::parse_items(&rel, &src);
            let fns = exprs::parse_fns(&rel, &src);
            ParsedFile {
                rel,
                src,
                tree,
                fns,
            }
        })
        .collect()
}

fn print_tables() {
    let config = Config::new(workspace_root());
    let clock = Clock::wall();
    let start = clock.now();
    let lint = srlr_lint::run(&config).expect("workspace lint runs");
    let wall_ms = (clock.now() - start) * 1e3;

    let parsed = parse_workspace(&config.root);
    let graph = semantic::build_call_graph(&parsed);
    let hot = semantic::load_hotpaths(&config.root).expect("committed lint-hotpaths.txt");

    report::section("srlr-lint — full workspace pass");
    println!("{:>24} {:>10}", "metric", "value");
    let fresh = lint.fresh.len();
    for (name, value) in [
        ("files_checked", lint.files_checked),
        ("fresh_violations", fresh),
        ("rules", ALL_RULES.len()),
        ("callgraph_nodes", graph.nodes().len()),
        ("hot_roots", hot.roots.len()),
    ] {
        println!("{name:>24} {value:>10}");
    }
    println!("{:>24} {wall_ms:>10.1}", "wall_ms");
    assert_eq!(fresh, 0, "the committed tree must lint clean");
    assert!(!hot.roots.is_empty(), "hot roots are declared");

    let mut run = srlr_telemetry::RunReport::new("lint");
    run.section_metric(
        "scan",
        "files_checked",
        Value::U64(lint.files_checked as u64),
    );
    run.section_metric("scan", "fresh_violations", Value::U64(fresh as u64));
    run.section_metric("scan", "rules", Value::U64(ALL_RULES.len() as u64));
    run.section_metric("callgraph", "nodes", Value::U64(graph.nodes().len() as u64));
    run.section_metric("callgraph", "hot_roots", Value::U64(hot.roots.len() as u64));
    run.section_metric("timing", "wall_ms", Value::F64(wall_ms));
    report::emit_run_report(&run);
    report::emit_bench_snapshot(&run);
}

fn bench(c: &mut Criterion) {
    print_tables();
    let config = Config::new(workspace_root());
    // The full pass, as CI runs it: every rule over every file.
    c.bench_function("lint_workspace_full", |b| {
        b.iter(|| srlr_lint::run(&config).expect("lint runs"))
    });
    // Call-graph construction in isolation — the layer this lint's
    // dataflow rules added on top of the item tree.
    let parsed = parse_workspace(&config.root);
    c.bench_function("lint_callgraph_build", |b| {
        b.iter(|| semantic::build_call_graph(&parsed))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
