//! Monte Carlo throughput: dice evaluated per second through the full
//! Fig. 6 stress-test pipeline, serial versus the parallel sweep engine.
//!
//! This is the harness behind the perf numbers quoted in
//! `EXPERIMENTS.md`: it measures the per-die cost of the counter-based
//! sampler plus the early-exit link check, then the wall-clock speedup
//! (or scheduling overhead, on small machines) of `SRLR_THREADS` workers.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::SrlrDesign;
use srlr_link::engine;
use srlr_link::montecarlo::McExperiment;
use srlr_tech::Technology;
use std::time::Instant;

/// Dice per throughput measurement. Override with SRLR_MC_RUNS.
fn runs() -> usize {
    std::env::var("SRLR_MC_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

/// One timed error-probability evaluation; returns dice per second.
fn dice_per_second(exp: &McExperiment<'_>, design: &SrlrDesign) -> f64 {
    let start = Instant::now();
    let p = exp.error_probability(design);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(p.trials, exp.runs);
    exp.runs as f64 / elapsed
}

fn print_throughput() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let n = runs();

    report::section(&format!(
        "Monte Carlo throughput — {n} dice through the Fig. 6 stress test"
    ));
    println!(
        "machine: {} available thread(s); SRLR_THREADS={}",
        engine::available_threads(),
        std::env::var(engine::THREADS_ENV).unwrap_or_else(|_| "unset".into()),
    );

    let mut run = srlr_telemetry::RunReport::new("mc_throughput");
    run.param("runs", srlr_telemetry::Value::U64(n as u64));
    run.param(
        "available_threads",
        srlr_telemetry::Value::U64(engine::available_threads() as u64),
    );
    let mut serial_rate = 0.0;
    for threads in [1usize, 2, 4, engine::available_threads()] {
        let exp = McExperiment::paper_default(&tech)
            .with_runs(n)
            .with_threads(Some(threads));
        let rate = dice_per_second(&exp, &design);
        if threads == 1 {
            serial_rate = rate;
        }
        println!(
            "{threads:>3} thread(s): {rate:>10.0} dice/s  (x{:.2} vs serial)",
            rate / serial_rate.max(f64::MIN_POSITIVE)
        );
        run.section_metric(
            &format!("threads.{threads:03}"),
            "dice_per_second",
            srlr_telemetry::Value::F64(rate),
        );
    }
    report::emit_run_report(&run);
}

fn bench(c: &mut Criterion) {
    print_throughput();
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let serial = McExperiment::paper_default(&tech)
        .with_runs(100)
        .with_threads(Some(1));
    let parallel = McExperiment::paper_default(&tech)
        .with_runs(100)
        .with_threads(None);
    c.bench_function("mc_100_dice_serial", |b| {
        b.iter(|| serial.error_probability(&design))
    });
    c.bench_function("mc_100_dice_auto_threads", |b| {
        b.iter(|| parallel.error_probability(&design))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
