//! Monte Carlo throughput: dice evaluated per second through the full
//! Fig. 6 stress-test pipeline — the scalar one-die-at-a-time reference
//! versus the certificate-screened batched engine, serial and threaded.
//!
//! This is the harness behind the perf numbers quoted in
//! `EXPERIMENTS.md`. Besides the ASCII table and the usual
//! `target/srlr-reports/mc_throughput.json` run report, it writes the
//! committed snapshot `BENCH_mc_throughput.json` at the repo root
//! (schema-versioned by `srlr-telemetry`'s run-report version); CI's
//! bench-smoke job regenerates and validates it with a reduced
//! `SRLR_MC_RUNS`.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::{report, thread_ladder};
use srlr_core::SrlrDesign;
use srlr_link::engine;
use srlr_link::montecarlo::{McEngine, McExperiment};
use srlr_tech::Technology;
use std::time::Instant;

/// Dice per throughput measurement. Override with SRLR_MC_RUNS.
fn runs() -> usize {
    std::env::var("SRLR_MC_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

/// One timed error-probability evaluation; returns dice per second.
fn dice_per_second(exp: &McExperiment<'_>, design: &SrlrDesign) -> f64 {
    let start = Instant::now();
    let p = exp.error_probability(design);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(p.trials, exp.runs);
    exp.runs as f64 / elapsed
}

fn print_throughput() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let n = runs();
    let available = engine::available_threads();

    report::section(&format!(
        "Monte Carlo throughput — {n} dice through the Fig. 6 stress test"
    ));
    println!(
        "machine: {available} available thread(s); SRLR_THREADS={}",
        std::env::var(engine::THREADS_ENV).unwrap_or_else(|_| "unset".into()),
    );

    let mut run = srlr_telemetry::RunReport::new("mc_throughput");
    run.param("runs", srlr_telemetry::Value::U64(n as u64));
    run.param(
        "available_threads",
        srlr_telemetry::Value::U64(available as u64),
    );
    let base = McExperiment::paper_default(&tech).with_runs(n);
    run.param(
        "batch_width",
        srlr_telemetry::Value::U64(base.batch_width as u64),
    );

    // The scalar serial reference every speedup below is relative to.
    let scalar_rate = dice_per_second(
        &base
            .clone()
            .with_engine(McEngine::Scalar)
            .with_threads(Some(1)),
        &design,
    );
    println!("scalar reference, 1 thread: {scalar_rate:>10.0} dice/s");
    run.section_metric(
        "scalar.threads.001",
        "dice_per_second",
        srlr_telemetry::Value::F64(scalar_rate),
    );

    // The batched engine: single-core speedup first (the tentpole
    // number), then the thread ladder. The ladder is deduplicated —
    // repeated rungs on small machines used to overwrite each other's
    // report metrics.
    let mut batched_serial_rate = 0.0;
    for threads in thread_ladder(available) {
        let rate = dice_per_second(&base.clone().with_threads(Some(threads)), &design);
        if threads == 1 {
            batched_serial_rate = rate;
        }
        println!(
            "batched, {threads:>3} thread(s): {rate:>10.0} dice/s  (x{:.2} vs scalar serial)",
            rate / scalar_rate.max(f64::MIN_POSITIVE)
        );
        run.section_metric(
            &format!("batched.threads.{threads:03}"),
            "dice_per_second",
            srlr_telemetry::Value::F64(rate),
        );
    }
    run.metric(
        "speedup.batched_serial_vs_scalar_serial",
        srlr_telemetry::Value::F64(batched_serial_rate / scalar_rate.max(f64::MIN_POSITIVE)),
    );

    report::emit_run_report(&run);
    report::emit_bench_snapshot(&run);
}

fn bench(c: &mut Criterion) {
    print_throughput();
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let scalar = McExperiment::paper_default(&tech)
        .with_runs(100)
        .with_engine(McEngine::Scalar)
        .with_threads(Some(1));
    let serial = McExperiment::paper_default(&tech)
        .with_runs(100)
        .with_threads(Some(1));
    let parallel = McExperiment::paper_default(&tech)
        .with_runs(100)
        .with_threads(None);
    c.bench_function("mc_100_dice_scalar_engine", |b| {
        b.iter(|| scalar.error_probability(&design))
    });
    c.bench_function("mc_100_dice_serial", |b| {
        b.iter(|| serial.error_probability(&design))
    });
    c.bench_function("mc_100_dice_auto_threads", |b| {
        b.iter(|| parallel.error_probability(&design))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
