//! Table I: comparison of silicon-proven on-chip interconnects, with this
//! reproduction's measured row, plus the Sec. IV headline measurements
//! (max data rate, BER bound, link power, bias share).

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::SrlrDesign;
use srlr_link::ber::{max_data_rate, BerTester};
use srlr_link::{ComparisonTable, LinkConfig, SrlrLink};
use srlr_tech::{AdaptiveSwingBias, GlobalVariation, Technology};
use srlr_units::DataRate;

fn print_table() {
    let tech = Technology::soi45();
    report::section("Table I — comparison of silicon-proven on-chip interconnects");
    let table = ComparisonTable::paper_table1(&tech);
    println!("{}", table.render());

    report::section("Sec. IV — measured test-chip numbers vs the paper");
    let link = SrlrLink::paper_test_chip(&tech);
    let metrics = link.metrics();
    report::paper_vs_measured(
        "bandwidth density",
        "Gb/s/um",
        6.83,
        metrics
            .bandwidth_density
            .gigabits_per_second_per_micrometer(),
    );
    report::paper_vs_measured(
        "link-traversal energy",
        "fJ/bit/mm",
        40.4,
        metrics.energy.femtojoules_per_bit_per_millimeter(),
    );
    report::paper_vs_measured(
        "link power at 4.1 Gb/s",
        "mW",
        1.66,
        metrics.power.milliwatts(),
    );

    let design = SrlrDesign::paper_proposed(&tech);
    let max = max_data_rate(
        &tech,
        &design,
        LinkConfig::paper_default(),
        &GlobalVariation::nominal(),
        DataRate::from_gigabits_per_second(1.0),
        DataRate::from_gigabits_per_second(10.0),
        DataRate::from_gigabits_per_second(0.05),
    )
    .expect("nominal link works");
    println!(
        "stress-pattern failure cliff: {:.2} Gb/s (nominal die, no margin)",
        max.gigabits_per_second()
    );
    report::paper_vs_measured(
        "rated maximum data rate (0.7 x cliff)",
        "Gb/s",
        4.1,
        max.gigabits_per_second() * srlr_bench::fig8::RATE_MARGIN,
    );

    let bits = std::env::var("SRLR_BER_BITS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let ber = BerTester::prbs15().run(&link, bits);
    println!("BER run: {ber}");
    println!("(paper: zero errors over >1e9 bits => BER < 1e-9; scale with SRLR_BER_BITS)");

    let bias = AdaptiveSwingBias::paper_default(&tech);
    let link_power_64 = metrics.power * 64.0;
    report::paper_vs_measured(
        "bias power share of a 64-bit 10 mm link",
        "%",
        0.6,
        bias.power_fraction_of(link_power_64) * 100.0,
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let tech = Technology::soi45();
    let link = SrlrLink::paper_test_chip(&tech);
    c.bench_function("prbs_transmit_10k_bits", |b| {
        let mut tester = BerTester::prbs15();
        b.iter(|| tester.run(&link, 10_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
