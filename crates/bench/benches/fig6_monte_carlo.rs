//! Fig. 6: 1000-run Monte Carlo error probability versus swing voltage
//! for the proposed and straightforward SRLR designs, including the
//! paper's 3.7x immunity headline.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::SrlrDesign;
use srlr_link::montecarlo::McExperiment;
use srlr_link::{LinkConfig, SrlrLink};
use srlr_tech::{MonteCarlo, Technology};
use srlr_units::Voltage;

/// Dice per point; the paper uses 1000. Override with SRLR_MC_RUNS.
fn runs() -> usize {
    std::env::var("SRLR_MC_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

fn print_figure() {
    let tech = Technology::soi45();
    let exp = McExperiment::paper_default(&tech).with_runs(runs());

    report::section(&format!(
        "Fig. 6 — Monte Carlo error probability vs swing voltage ({} dice/point)",
        runs()
    ));
    let swings: Vec<Voltage> = (6..=12)
        .map(|i| Voltage::from_millivolts(f64::from(i) * 50.0))
        .collect();
    println!(
        "{:>10} {:>26} {:>26}",
        "swing", "proposed SRLR", "straightforward SRLR"
    );
    let proposed = SrlrDesign::paper_proposed(&tech);
    let straightforward = SrlrDesign::straightforward(&tech);
    let sweep_p = exp.swing_sweep(&proposed, &swings);
    let sweep_s = exp.swing_sweep(&straightforward, &swings);
    for ((swing, p), (_, s)) in sweep_p.iter().zip(&sweep_s) {
        println!(
            "{:>10} {:>26} {:>26}",
            swing.to_string(),
            p.to_string(),
            s.to_string()
        );
    }

    report::section("Fig. 6 — immunity at the fabrication swing");
    let (p, s, ratio) = exp.immunity_ratio();
    println!("proposed:        {p}");
    println!("straightforward: {s}");
    report::paper_vs_measured(
        "immunity ratio (straightforward / proposed)",
        "x",
        3.7,
        ratio,
    );

    let mut run = srlr_telemetry::RunReport::new("fig6_monte_carlo");
    run.param("runs", srlr_telemetry::Value::U64(runs() as u64));
    run.metric("immunity_ratio", srlr_telemetry::Value::F64(ratio));
    run.metric(
        "proposed_error_probability",
        srlr_telemetry::Value::F64(p.estimate()),
    );
    run.metric(
        "straightforward_error_probability",
        srlr_telemetry::Value::F64(s.estimate()),
    );
    for (i, ((swing, p), (_, s))) in sweep_p.iter().zip(&sweep_s).enumerate() {
        let section = format!("point.{i:03}");
        run.section_metric(
            &section,
            "swing_mv",
            srlr_telemetry::Value::F64(swing.millivolts()),
        );
        run.section_metric(
            &section,
            "proposed_failures",
            srlr_telemetry::Value::U64(p.failures as u64),
        );
        run.section_metric(
            &section,
            "straightforward_failures",
            srlr_telemetry::Value::U64(s.failures as u64),
        );
    }
    report::emit_run_report(&run);
}

fn bench(c: &mut Criterion) {
    print_figure();
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    c.bench_function("mc_one_die_stress_test", |b| {
        let mut mc = MonteCarlo::new(&tech, 99);
        b.iter(|| {
            let var = mc.sample_die();
            let link = SrlrLink::on_die_with_mismatch(
                &tech,
                &design,
                LinkConfig::paper_default(),
                &var,
                &mut mc,
            );
            link.transmit(&[true, true, true, true, false, true, false, true])
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
