//! Latency–load characterisation of the mesh NoC (the standard NoC
//! evaluation curve, run for several traffic patterns), plus the
//! express-channel trade-off of the paper's introduction.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_noc::traffic::Pattern;
use srlr_noc::{ExpressComparison, ExpressTopology, Mesh, Network, NocConfig, RouterAreaModel};
use srlr_tech::Technology;

fn print_curves() {
    report::section("8x8 mesh latency vs offered load (packets/node/cycle)");
    let loads = [0.02, 0.04, 0.06, 0.08, 0.10, 0.12];
    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "load", "uniform", "transpose", "neighbor"
    );
    for &load in &loads {
        let mut row = Vec::new();
        for pattern in [
            Pattern::UniformRandom,
            Pattern::Transpose,
            Pattern::Neighbor,
        ] {
            let mut net = Network::new(NocConfig::paper_default());
            let stats = net.run_warmup_and_measure(pattern, load, 500, 1500);
            row.push(if stats.packets_received > 0 {
                format!("{:>13.1} cyc", stats.avg_latency_cycles())
            } else {
                ">sat".to_owned()
            });
        }
        println!("{load:>6.2} {:>16} {:>16} {:>16}", row[0], row[1], row[2]);
    }
    println!(
        "\nNeighbour (local) traffic rides the mesh's short links — the\n\
         locality argument for meshes over indirect topologies in Sec. I."
    );

    report::section("Express channels (Sec. I counter-argument, [28][29])");
    let tech = Technology::soi45();
    println!(
        "{:>9} {:>11} {:>12} {:>13} {:>13}",
        "interval", "hop cut", "energy x", "driver area x", "extra ports"
    );
    for interval in [2u16, 4] {
        let topo = ExpressTopology::new(Mesh::new(8, 8), interval);
        let c = ExpressComparison::evaluate(&tech, topo);
        println!(
            "{interval:>9} {:>10.1}% {:>12.2} {:>13.0} {:>13}",
            c.hop_reduction() * 100.0,
            c.energy_ratio(),
            c.driver_area_ratio(),
            topo.extra_ports_at_stations(),
        );
    }
    println!(
        "\nExpress wiring cuts router visits but pays more datapath energy\n\
         per transfer and >35x driver area per bit — the paper's reason to\n\
         keep traffic on 1 mm SRLR hops instead."
    );

    report::section("Router floorplan (derived, vs the paper's 0.34 mm^2)");
    let model = RouterAreaModel::paper_default();
    print!("{}", model.render(&NocConfig::paper_default()));
}

fn bench(c: &mut Criterion) {
    print_curves();
    c.bench_function("mesh_8x8_full_measurement_window", |b| {
        b.iter(|| {
            let mut net = Network::new(NocConfig::paper_default().with_size(4, 4));
            net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 50, 200)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
