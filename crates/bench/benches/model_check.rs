//! State-space throughput of the `srlr-model` exhaustive checker: how
//! fast the BFS enumerates canonical states and how fast the absorbing
//! DTMC solves, across the retry budgets the CI gate proves.
//!
//! Besides the `target/srlr-reports/model_check.json` run report, it
//! writes the committed snapshot `BENCH_model_check.json` at the repo
//! root (same schema: `srlr-telemetry`'s versioned run report). State
//! counts and the exact DTMC delivery probabilities are deterministic,
//! so CI's perf-regression job gates the snapshot with `srlr
//! bench-diff` at (near-)zero tolerance.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_model::{check_pair, closed_form_delivery, verify, ModelConfig};
use srlr_noc::Coord;

fn print_tables() {
    report::section("Model check — 2x2 mesh state-space size and exact delivery probability");
    println!(
        "{:>8} {:>10} {:>13} {:>12} {:>20}",
        "budget", "states", "transitions", "transient", "P(deliver) exact"
    );
    let mut run = srlr_telemetry::RunReport::new("model_check");
    for (i, budget) in [0u32, 1, 3].into_iter().enumerate() {
        let config = ModelConfig::two_by_two(1e-3, budget);
        let report_ = verify(&config);
        assert!(report_.all_proven(), "the shipped protocol must verify");
        let transient: usize = report_.pairs.iter().map(|p| p.transient).sum();
        println!(
            "{:>8} {:>10} {:>13} {:>12} {:>20.12}",
            budget,
            report_.total_states,
            report_.total_transitions,
            transient,
            report_.deliver_probability,
        );
        let closed = closed_form_delivery(&config);
        assert!((report_.deliver_probability - closed).abs() < 1e-12);
        let section = format!("budget.{i:03}");
        run.section_metric(
            &section,
            "max_retries",
            srlr_telemetry::Value::U64(u64::from(budget)),
        );
        run.section_metric(
            &section,
            "states",
            srlr_telemetry::Value::U64(report_.total_states as u64),
        );
        run.section_metric(
            &section,
            "transitions",
            srlr_telemetry::Value::U64(report_.total_transitions as u64),
        );
        run.section_metric(
            &section,
            "deliver_probability",
            srlr_telemetry::Value::F64(report_.deliver_probability),
        );
    }
    report::emit_run_report(&run);
    report::emit_bench_snapshot(&run);
}

fn bench(c: &mut Criterion) {
    print_tables();
    // Full 12-route verification at the CI budget: BFS + canonical
    // interning + DTMC solve per route.
    c.bench_function("verify_2x2_budget3", |b| {
        let config = ModelConfig::two_by_two(1e-3, 3);
        b.iter(|| verify(&config))
    });
    // The deepest single route (two hops) in isolation, so per-state
    // throughput can be derived from states/iteration.
    c.bench_function("check_pair_2hop_budget3", |b| {
        let config = ModelConfig::two_by_two(1e-3, 3);
        b.iter(|| check_pair(&config, Coord::new(0, 0), Coord::new(1, 1)))
    });
    // Longer packets grow the state space combinatorially; this is the
    // scaling point the EXPERIMENTS walkthrough quotes.
    c.bench_function("check_pair_2hop_len6_budget3", |b| {
        let config = ModelConfig::two_by_two(1e-3, 3).with_packet_len(6);
        b.iter(|| check_pair(&config, Coord::new(0, 0), Coord::new(1, 1)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
