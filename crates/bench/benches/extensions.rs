//! Beyond-the-paper characterisation: crosstalk scenarios, temperature
//! sweep, supply scaling, the jittered BER bathtub, and the bufferless
//! (deflection) alternative from the paper's introduction.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::SrlrDesign;
use srlr_link::{bathtub, crosstalk, supply, LinkConfig, Prbs, SrlrLink};
use srlr_noc::bufferless::DeflectionNetwork;
use srlr_noc::traffic::Pattern;
use srlr_noc::{DatapathKind, Network, NocConfig, PowerModel};
use srlr_tech::{Technology, Temperature};
use srlr_units::{DataRate, TimeInterval, Voltage};

fn print_all() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);

    report::section("Crosstalk: neighbour-activity scenarios");
    println!(
        "{:<12} {:>14} {:>18}",
        "neighbours", "cliff rate", "energy @4.1 Gb/s"
    );
    for p in crosstalk::crosstalk_sweep(&tech, &design) {
        println!(
            "{:<12} {:>11} {:>14.1} fJ/b/mm",
            format!("{:?}", p.activity),
            p.max_rate.map_or("fails".to_owned(), |r| format!(
                "{:.1} Gb/s",
                r.gigabits_per_second()
            )),
            p.energy.femtojoules_per_bit_per_millimeter(),
        );
    }

    report::section("Temperature sweep at 4.1 Gb/s (adaptive bias)");
    for celsius in [-40.0, 27.0, 85.0, 105.0] {
        let var = Temperature::from_celsius(celsius).as_variation();
        let link = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &var);
        let mut gen = Prbs::prbs15();
        let bits = gen.take_bits(4096);
        let out = link.transmit(&bits);
        let errors = bits
            .iter()
            .zip(&out.received)
            .filter(|(a, b)| a != b)
            .count();
        println!(
            "{:>6.0} C: {} errors / {} bits",
            celsius,
            errors,
            bits.len()
        );
    }
    println!("(105 C needs extra commanded swing — the mobility collapse outruns Vth tracking)");

    report::section("Supply scaling (rated at 0.7 x cliff)");
    let vdds: Vec<Voltage> = (6..=10)
        .map(|i| Voltage::from_volts(f64::from(i) / 10.0))
        .collect();
    for p in supply::supply_sweep(&tech, &design, &vdds) {
        println!(
            "VDD {:>7}: cliff {:>4.1} Gb/s, {:>5.1} fJ/bit/mm, {:>5.2} mW",
            p.vdd.to_string(),
            p.max_rate.gigabits_per_second(),
            p.energy.femtojoules_per_bit_per_millimeter(),
            p.power.milliwatts()
        );
    }

    report::section("BER bathtub (3 ps width jitter per stage)");
    let rates: Vec<DataRate> = (7..=14)
        .map(|i| DataRate::from_gigabits_per_second(f64::from(i) * 0.5))
        .collect();
    let curve = bathtub::rate_bathtub(
        &tech,
        &design,
        &rates,
        TimeInterval::from_picoseconds(3.0),
        2_000,
        8,
    );
    print!("{}", bathtub::render(&curve));

    report::section("Bufferless (deflection) vs VC routers — Sec. I's buffer-power argument");
    let load = 0.10;
    let (cycles_w, cycles_m) = (400u64, 1600u64);
    let config = NocConfig::paper_default()
        .with_size(8, 8)
        .with_packet_len(1);
    let model = PowerModel::for_datapath(&tech, config.flit_bits, DatapathKind::SrlrLowSwing);

    let mut vc = Network::new(config);
    let vc_stats = vc.run_warmup_and_measure(Pattern::UniformRandom, load, cycles_w, cycles_m);
    let vc_power = model.report(
        &vc_stats.energy,
        cycles_m,
        config.clock,
        config.mesh().len(),
    );

    let mut dfl = DeflectionNetwork::new(config);
    let dfl_stats = dfl.run_warmup_and_measure(Pattern::UniformRandom, load, cycles_w, cycles_m);
    let dfl_power = model.report(
        &dfl_stats.energy,
        cycles_m,
        config.clock,
        config.mesh().len(),
    );

    println!("VC router:   {vc_stats}");
    println!("             {vc_power}");
    println!("deflection:  {dfl_stats}");
    println!(
        "             {dfl_power}  ({} deflections)",
        dfl.deflections()
    );
    println!(
        "\nBufferless removes the buffer component entirely, but its extra\n\
         link traversals land on the datapath — the component the paper\n\
         says is unavoidable and attacks with low-swing signaling instead."
    );
}

fn bench(c: &mut Criterion) {
    print_all();
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    c.bench_function("crosstalk_sweep", |b| {
        b.iter(|| crosstalk::crosstalk_sweep(&tech, &design))
    });
    c.bench_function("deflection_mesh_step", |b| {
        let config = NocConfig::paper_default()
            .with_size(4, 4)
            .with_packet_len(1);
        let mut net = DeflectionNetwork::new(config);
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.1, 100, 100);
        b.iter(|| net.step())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
