//! Ablation of the three Sec. III robustness techniques (alternating
//! delay cells, NMOS-based drivers, adaptive swing) across all eight
//! combinations, plus the free-multicast energy accounting of Sec. II.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::{DelayCellDesign, DriverKind, SrlrDesign};
use srlr_link::montecarlo::McExperiment;
use srlr_link::{MulticastLink, SrlrLink};
use srlr_noc::{Coord, Mesh, MulticastAccounting};
use srlr_tech::Technology;

fn runs() -> usize {
    std::env::var("SRLR_MC_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500)
}

fn print_tables() {
    let tech = Technology::soi45();
    let exp = McExperiment::paper_default(&tech).with_runs(runs());
    let base = SrlrDesign::paper_proposed(&tech);

    report::section(&format!(
        "Ablation — Monte Carlo failure probability per technique combination ({} dice)",
        runs()
    ));
    println!(
        "{:<14} {:<12} {:<10} {:>18}",
        "delay cell", "driver", "bias", "error probability"
    );
    for (dlabel, delay) in [
        ("alternating", DelayCellDesign::alternating_paper()),
        ("single", DelayCellDesign::single_paper()),
    ] {
        for (vlabel, driver) in [
            ("NMOS", DriverKind::NmosBased),
            ("inverter", DriverKind::Inverter),
        ] {
            for adaptive in [true, false] {
                let design = base
                    .with_delay_cell(delay)
                    .with_driver(driver)
                    .with_adaptive_swing(adaptive);
                let p = exp.error_probability(&design);
                println!(
                    "{:<14} {:<12} {:<10} {:>18}",
                    dlabel,
                    vlabel,
                    if adaptive { "adaptive" } else { "fixed" },
                    p.to_string()
                );
            }
        }
    }
    println!(
        "\nReading: the adaptive swing scheme is the largest single\n\
         contributor, the NMOS driver removes the inverter's two-sided\n\
         failure modes; the alternating cell trades a little typical-corner\n\
         margin for drift containment (see the sec3_pulse_width traces)."
    );

    report::section("Repeater insertion-length ablation (the 1 mm premise of Sec. II)");
    println!(
        "(10 mm total span; the SRLR is sized to drive the router-to-router\n\
         distance directly, so 1 mm segments should sit at the sweet spot)\n"
    );
    println!(
        "{:>10} {:>8} {:>12} {:>18} {:>14}",
        "segment", "stages", "nominal", "energy", "corners ok"
    );
    for tenths in [5u32, 10, 20, 25] {
        let seg_mm = f64::from(tenths) / 10.0;
        let stages = (10.0 / seg_mm).round() as usize;
        let design = srlr_core::SrlrDesign {
            segment_length: srlr_units::Length::from_millimeters(seg_mm),
            ..base.clone()
        };
        let chain = design.instantiate(&tech, &srlr_tech::GlobalVariation::nominal(), stages);
        let nominal_ok = chain.propagate(chain.nominal_input_pulse()).is_valid();
        let energy = if nominal_ok {
            format!(
                "{:>13.1} fJ/b/mm",
                srlr_core::StageEnergyModel::from_chain(&chain)
                    .energy_per_bit_per_length(0.5)
                    .femtojoules_per_bit_per_millimeter()
            )
        } else {
            "n/a".to_owned()
        };
        let corners_ok = srlr_tech::ProcessCorner::ALL
            .iter()
            .filter(|c| {
                let chain = design.instantiate(&tech, &c.variation(&tech), stages);
                chain.propagate(chain.nominal_input_pulse()).is_valid()
            })
            .count();
        println!(
            "{:>7.1} mm {:>8} {:>12} {:>18} {:>11}/5",
            seg_mm,
            stages,
            if nominal_ok { "ok" } else { "FAIL" },
            energy,
            corners_ok,
        );
    }

    report::section("Sec. II — free 1-to-N multicast energy (10 mm link taps)");
    let link = SrlrLink::paper_test_chip(&tech);
    for taps in [vec![9], vec![4, 9], vec![2, 5, 9], vec![1, 3, 5, 7, 9]] {
        let m = MulticastLink::new(link.clone(), taps.clone());
        println!(
            "taps {:?}: multicast {} vs unicast clones {} (saving {:.2}x)",
            taps,
            m.multicast_pulse_energy(),
            m.unicast_clone_pulse_energy(),
            m.multicast_saving()
        );
    }

    report::section("Sec. II — mesh multicast trees (8x8, XY)");
    let mesh = Mesh::new(8, 8);
    let src = Coord::new(0, 0);
    for fanout in [2usize, 4, 8] {
        let dsts: Vec<Coord> = (0..fanout)
            .map(|k| Coord::new(7, (k * 7 / fanout.max(1)) as u16))
            .collect();
        let acc = MulticastAccounting::new(mesh, src, &dsts);
        println!(
            "fanout {fanout}: tree {} hops vs unicast {} hops (saving {:.2}x)",
            acc.tree_hops(),
            acc.unicast_hops(),
            acc.saving_factor()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let tech = Technology::soi45();
    let exp = McExperiment::paper_default(&tech).with_runs(20);
    let design = SrlrDesign::paper_proposed(&tech);
    c.bench_function("mc_20_dice_error_probability", |b| {
        b.iter(|| exp.error_probability(&design))
    });
    let link = SrlrLink::paper_test_chip(&tech);
    c.bench_function("multicast_saving_accounting", |b| {
        let m = MulticastLink::new(link.clone(), vec![2, 5, 9]);
        b.iter(|| m.multicast_saving())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
