//! Fault-injection characterisation of the mesh NoC: delivered rate,
//! honest p99 latency and retransmission energy versus the injected link
//! BER, plus a Criterion benchmark of the fault-injected hot path.
//!
//! Besides the `target/srlr-reports/noc_faults.json` run report, it
//! writes the committed snapshot `BENCH_noc_faults.json` at the repo
//! root (same schema: `srlr-telemetry`'s versioned run report). The
//! sweep is fully deterministic, so CI's perf-regression job gates it
//! with `srlr bench-diff` at (near-)zero tolerance.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_noc::traffic::Pattern;
use srlr_noc::{ber_sweep, FaultConfig, Network, NocConfig, PowerModel};
use srlr_tech::Technology;

fn print_tables() {
    report::section("8x8 mesh under BER-driven fault injection (CRC-16 + NACK retransmission)");
    let tech = Technology::soi45();
    let config = NocConfig::paper_default();
    let model = PowerModel::paper_default(&tech);
    let bers = [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    let points = ber_sweep(
        config,
        FaultConfig::new(0.0),
        Pattern::UniformRandom,
        0.05,
        500,
        1500,
        &bers,
        None,
    );
    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>9} {:>8} {:>14}",
        "ber", "delivered", "p99", "retries", "silent", "dropped", "energy/bit"
    );
    for p in &points {
        let s = &p.stats;
        let p99 = s
            .latency_percentile(99.0)
            .map_or_else(|| ">512".to_owned(), |v| v.to_string());
        let bits = s.packets_received as f64 * (config.packet_len * config.flit_bits) as f64;
        println!(
            "{:>10.1e} {:>9.2}% {:>8} {:>10} {:>9} {:>8} {:>11.1} fJ",
            p.ber,
            s.delivered_fraction() * 100.0,
            p99,
            s.faults.flits_retransmitted,
            s.faults.silent_corruptions,
            s.packets_dropped,
            model.dynamic_energy(&s.energy).joules() / bits.max(1.0) * 1e15,
        );
    }
    println!(
        "\nReading: the paper bounds the measured link at BER < 1e-9, where\n\
         the retransmission machinery is idle and free; the sweep shows how\n\
         gracefully delivery degrades (and energy/bit grows) if a link were\n\
         orders of magnitude worse than measured."
    );

    let mut run = srlr_telemetry::RunReport::new("noc_faults");
    run.param("points", srlr_telemetry::Value::U64(points.len() as u64));
    run.param("load", srlr_telemetry::Value::F64(0.05));
    for (i, p) in points.iter().enumerate() {
        let section = format!("point.{i:03}");
        run.section_metric(&section, "ber", srlr_telemetry::Value::F64(p.ber));
        run.section_metric(
            &section,
            "delivered_fraction",
            srlr_telemetry::Value::F64(p.stats.delivered_fraction()),
        );
        run.section_metric(
            &section,
            "flits_retransmitted",
            srlr_telemetry::Value::U64(p.stats.faults.flits_retransmitted),
        );
        for (name, value) in p.stats.latency_histogram.summary().metric_fields("latency") {
            run.section_metric(&section, &name, value);
        }
    }
    report::emit_run_report(&run);
    report::emit_bench_snapshot(&run);
}

fn bench(c: &mut Criterion) {
    print_tables();
    c.bench_function("mesh_4x4_fault_injected_window", |b| {
        b.iter(|| {
            let mut net = Network::new(NocConfig::paper_default().with_size(4, 4).with_ber(1e-3));
            net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 50, 200)
        })
    });
    c.bench_function("mesh_4x4_fault_model_installed_ber0", |b| {
        b.iter(|| {
            let mut net = Network::new(NocConfig::paper_default().with_size(4, 4).with_ber(0.0));
            net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 50, 200)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
