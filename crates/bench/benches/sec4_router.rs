//! Sec. IV router numbers: the 64-bit 5-port mesh router's power split
//! (buffers 38.8 mW / control 5.2 mW / SRLR datapath 12.9 mW), the area
//! fractions, the Sec. I published NoC breakdowns, and the full-swing vs
//! SRLR datapath comparison on a live 8x8 mesh.

use criterion::{criterion_group, criterion_main, Criterion};
use srlr_bench::report;
use srlr_core::SrlrArea;
use srlr_noc::traffic::Pattern;
use srlr_noc::{DatapathKind, Network, NocConfig, PowerModel, PublishedBreakdown};
use srlr_tech::Technology;
use srlr_units::Frequency;

fn print_report() {
    let tech = Technology::soi45();
    let model = PowerModel::paper_default(&tech);

    report::section("Sec. IV — synthesized router power split (calibration point)");
    let cal = model.calibration_report(Frequency::from_gigahertz(1.0), 5);
    report::paper_vs_measured("input buffers", "mW", 38.8, cal.buffers.milliwatts());
    report::paper_vs_measured("control logic", "mW", 5.2, cal.control.milliwatts());
    report::paper_vs_measured(
        "SRLR low-swing datapath (incl. bias)",
        "mW",
        12.9,
        (cal.datapath + cal.bias).milliwatts(),
    );

    report::section("Sec. I / Fig. 7 — area accounting");
    let area = SrlrArea::paper_default();
    report::paper_vs_measured(
        "SRLR cell area",
        "um^2",
        47.9,
        area.cell_area().square_micrometers(),
    );
    report::paper_vs_measured(
        "64b x 5-port datapath area",
        "mm^2",
        0.061,
        area.paper_datapath_area().square_millimeters(),
    );
    report::paper_vs_measured(
        "datapath share of router footprint",
        "%",
        18.0,
        area.datapath_fraction(64, 5, 4) * 100.0,
    );

    report::section("Sec. I — published mesh NoC power breakdowns");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>20}",
        "chip", "links", "crossbar", "buffers", "datapath (lnk+xbar)"
    );
    for b in PublishedBreakdown::all() {
        println!(
            "{:<12} {:>7.0}% {:>9.0}% {:>9.0}% {:>19.0}%",
            b.name,
            b.links_pct,
            b.crossbar_pct,
            b.buffers_pct,
            b.datapath_pct()
        );
    }

    report::section("8x8 mesh at uniform random load — SRLR vs full-swing datapath");
    let cycles_w = 500;
    let cycles_m = 2000;
    for datapath in [DatapathKind::SrlrLowSwing, DatapathKind::FullSwingRepeated] {
        let config = NocConfig::paper_default().with_datapath(datapath);
        let mut net = Network::new(config);
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.06, cycles_w, cycles_m);
        let model = PowerModel::for_datapath(&tech, config.flit_bits, datapath);
        let power = model.report(&stats.energy, cycles_m, config.clock, config.mesh().len());
        println!("\n{datapath}:");
        println!("  traffic: {stats}");
        println!("  power:   {power}");
        println!(
            "  datapath fraction of NoC power: {:.1} %",
            power.datapath_fraction() * 100.0
        );
    }
    println!(
        "\nShape check: swapping the full-swing datapath for the SRLR cuts\n\
         the datapath component while buffers/control stay unchanged."
    );
}

fn bench(c: &mut Criterion) {
    print_report();
    c.bench_function("mesh_8x8_step_at_10pct_load", |b| {
        let config = NocConfig::paper_default();
        let mut net = Network::new(config);
        // Pre-warm with traffic so steps do real work.
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.10, 200, 200);
        b.iter(|| net.step())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
