//! Minimal flag parsing (`--name value` pairs) without external crates.

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed `--flag value` pairs plus valueless `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: std::collections::BTreeSet<String>,
}

impl Flags {
    /// Parses `rest` as alternating `--name value` pairs, validating
    /// every name against `allowed`.
    ///
    /// # Errors
    ///
    /// Returns a usage error for unknown flags, missing values or stray
    /// positional arguments.
    pub fn parse(rest: &[String], allowed: &[&str]) -> Result<Self, CliError> {
        Self::parse_with_switches(rest, allowed, &[])
    }

    /// [`Flags::parse`], additionally accepting the valueless boolean
    /// flags named in `switches` (e.g. `--progress`).
    ///
    /// # Errors
    ///
    /// Returns a usage error for unknown flags, missing values or stray
    /// positional arguments.
    pub fn parse_with_switches(
        rest: &[String],
        allowed: &[&str],
        switches: &[&str],
    ) -> Result<Self, CliError> {
        let mut values = BTreeMap::new();
        let mut set = std::collections::BTreeSet::new();
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument `{flag}`"
                )));
            };
            if switches.contains(&name) {
                set.insert(name.to_owned());
                continue;
            }
            if !allowed.contains(&name) {
                return Err(CliError::Usage(format!(
                    "unknown flag `--{name}` (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .chain(switches.iter().map(|s| format!("--{s}")))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let Some(value) = it.next() else {
                return Err(CliError::Usage(format!("flag `--{name}` needs a value")));
            };
            values.insert(name.to_owned(), value.clone());
        }
        Ok(Self {
            values,
            switches: set,
        })
    }

    /// Whether a boolean switch (e.g. `--progress`) was given.
    pub fn is_set(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Returns a flag parsed into `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a usage error when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CliError::Usage(format!("flag `--{name}` got unparsable value `{raw}`"))
            }),
        }
    }

    /// Returns the raw string of a flag, if present.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(
            &argv(&["--bits", "100", "--gbps", "4.1"]),
            &["bits", "gbps"],
        )
        .unwrap();
        assert_eq!(f.get_or("bits", 0usize).unwrap(), 100);
        assert!((f.get_or("gbps", 0.0f64).unwrap() - 4.1).abs() < 1e-12);
    }

    #[test]
    fn default_applies_when_absent() {
        let f = Flags::parse(&argv(&[]), &["bits"]).unwrap();
        assert_eq!(f.get_or("bits", 7usize).unwrap(), 7);
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = Flags::parse(&argv(&["--nope", "1"]), &["bits"]).unwrap_err();
        assert!(err.to_string().contains("--nope"));
    }

    #[test]
    fn missing_value_rejected() {
        let err = Flags::parse(&argv(&["--bits"]), &["bits"]).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn positional_rejected() {
        let err = Flags::parse(&argv(&["17"]), &["bits"]).unwrap_err();
        assert!(err.to_string().contains("positional"));
    }

    #[test]
    fn unparsable_value_rejected() {
        let f = Flags::parse(&argv(&["--bits", "soup"]), &["bits"]).unwrap();
        assert!(f.get_or("bits", 0usize).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let f = Flags::parse_with_switches(
            &argv(&["--progress", "--bits", "9"]),
            &["bits"],
            &["progress"],
        )
        .unwrap();
        assert!(f.is_set("progress"));
        assert!(!f.is_set("quiet"));
        assert_eq!(f.get_or("bits", 0usize).unwrap(), 9);
    }

    #[test]
    fn unknown_flag_error_lists_switches_too() {
        let err = Flags::parse_with_switches(&argv(&["--nope", "1"]), &["bits"], &["progress"])
            .unwrap_err();
        assert!(err.to_string().contains("--progress"));
    }
}
