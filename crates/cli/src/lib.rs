//! Implementation of the `srlr` command-line tool.
//!
//! Each subcommand wraps one of the workspace's experiment harnesses so a
//! user can regenerate any of the paper's results without touching
//! Criterion:
//!
//! ```text
//! srlr table1                  Table I + headline measurements
//! srlr fig6 [--runs N] [--threads T]   Monte Carlo swing sweep
//! srlr fig8                    energy vs bandwidth density
//! srlr waveforms               Fig. 4 transient waveforms
//! srlr ber [--bits N] [--gbps R]
//! srlr eye [--bits N]
//! srlr noc [--cols C --rows R --load F --datapath srlr|full]
//! srlr noc-faults [--bers L | --swings MV] [--load F] [--threads T]
//! srlr express [--interval K]
//! srlr sizing                  M1/M2 design-space sweep
//! srlr lint [--format sarif] [--deny-all]   workspace static analysis
//! srlr profile --in FILE [--top N]          rank a folded profile
//! srlr bench-diff --old A --new B [--tolerance F]   snapshot gate
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

/// Errors surfaced to the shell.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or malformed flags.
    Usage(String),
    /// An experiment could not run with the given parameters.
    Experiment(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Experiment(msg) => write!(f, "experiment error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Entry point shared by the binary and the tests: dispatches `argv`
/// (without the program name) and returns the rendered output.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown commands or flags and
/// [`CliError::Experiment`] when a run cannot produce a result.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Ok(commands::help());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(commands::help()),
        "table1" => commands::table1(),
        "fig6" => commands::fig6(rest),
        "fig8" => commands::fig8(),
        "waveforms" => commands::waveforms(rest),
        "ber" => commands::ber(rest),
        "eye" => commands::eye(rest),
        "noc" => commands::noc(rest),
        "noc-faults" => commands::noc_faults(rest),
        "express" => commands::express(rest),
        "sizing" => commands::sizing(),
        "shmoo" => commands::shmoo(rest),
        "supply" => commands::supply(),
        "temp" => commands::temp(),
        "bathtub" => commands::bathtub(rest),
        "crosstalk" => commands::crosstalk(),
        "lint" => commands::lint(rest),
        "verify-noc" => commands::verify_noc(rest),
        "profile" => commands::profile(rest),
        "bench-diff" => commands::bench_diff(rest),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; try `srlr help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run(&argv)
    }

    #[test]
    fn empty_argv_prints_help() {
        let out = call(&[]).unwrap();
        assert!(out.contains("srlr"));
        assert!(out.contains("table1"));
    }

    #[test]
    fn help_lists_all_commands() {
        let out = call(&["help"]).unwrap();
        for cmd in [
            "table1",
            "fig6",
            "fig8",
            "waveforms",
            "ber",
            "eye",
            "noc",
            "express",
            "sizing",
            "lint",
            "verify-noc",
        ] {
            assert!(out.contains(cmd), "help must mention {cmd}");
        }
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let err = call(&["fig99"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("fig99"));
    }

    #[test]
    fn table1_renders_rows() {
        let out = call(&["table1"]).unwrap();
        assert!(out.contains("This Work (measured)"));
        assert!(out.contains("fJ/bit"));
    }

    #[test]
    fn ber_with_small_budget_runs() {
        let out = call(&["ber", "--bits", "5000"]).unwrap();
        assert!(out.contains("errors"));
    }

    #[test]
    fn ber_rejects_bad_flag() {
        let err = call(&["ber", "--frobnicate"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn fig6_with_tiny_runs() {
        let out = call(&["fig6", "--runs", "20"]).unwrap();
        assert!(out.contains("proposed"));
        assert!(out.contains("immunity"));
    }

    #[test]
    fn fig6_thread_count_does_not_change_the_answer() {
        let serial = call(&["fig6", "--runs", "20", "--threads", "1"]).unwrap();
        let parallel = call(&["fig6", "--runs", "20", "--threads", "4"]).unwrap();
        assert_eq!(serial, parallel, "--threads must not change the output");
    }

    #[test]
    fn fig6_engine_and_batch_width_do_not_change_the_answer() {
        let batched = call(&["fig6", "--runs", "20"]).unwrap();
        let scalar = call(&["fig6", "--runs", "20", "--engine", "scalar"]).unwrap();
        let narrow = call(&["fig6", "--runs", "20", "--batch-width", "3"]).unwrap();
        assert_eq!(batched, scalar, "--engine must not change the output");
        assert_eq!(batched, narrow, "--batch-width must not change the output");
    }

    #[test]
    fn fig6_rejects_bad_engine_and_width() {
        let err = call(&["fig6", "--runs", "5", "--engine", "gpu"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("gpu"));
        let err = call(&["fig6", "--runs", "5", "--batch-width", "0"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn shmoo_accepts_threads_flag() {
        let serial = call(&["shmoo", "--bits", "64", "--threads", "1"]).unwrap();
        let parallel = call(&["shmoo", "--bits", "64", "--threads", "4"]).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn help_documents_threads() {
        let out = call(&["help"]).unwrap();
        assert!(out.contains("--threads"));
        assert!(out.contains("SRLR_THREADS"));
    }

    #[test]
    fn eye_reports_margins() {
        let out = call(&["eye", "--bits", "500"]).unwrap();
        assert!(out.contains("margin"));
    }

    #[test]
    fn noc_runs_a_small_mesh() {
        let out = call(&["noc", "--cols", "4", "--rows", "4", "--load", "0.05"]).unwrap();
        assert!(out.contains("pkts"));
        assert!(out.contains("buffers"));
    }

    #[test]
    fn noc_faults_sweeps_ber() {
        let out = call(&[
            "noc-faults",
            "--cols",
            "4",
            "--rows",
            "4",
            "--cycles",
            "600",
            "--bers",
            "0,1e-3",
        ])
        .unwrap();
        assert!(out.contains("delivered"));
        assert!(out.contains("energy/bit"));
        assert!(out.contains("retries"));
    }

    #[test]
    fn noc_faults_thread_count_does_not_change_the_answer() {
        let args = |t: &'static str| {
            call(&[
                "noc-faults",
                "--cols",
                "4",
                "--rows",
                "4",
                "--cycles",
                "400",
                "--bers",
                "0,5e-4,2e-3",
                "--threads",
                t,
            ])
            .unwrap()
        };
        assert_eq!(args("1"), args("4"), "--threads must not change the output");
    }

    #[test]
    fn noc_faults_swing_mode_measures_the_link() {
        let out = call(&[
            "noc-faults",
            "--cols",
            "4",
            "--rows",
            "4",
            "--cycles",
            "400",
            "--swings",
            "120,450",
            "--dice",
            "10",
            "--bits",
            "200",
        ])
        .unwrap();
        assert!(out.contains("450 mV"));
        assert!(out.contains("bits"), "swing mode reports the measurement");
    }

    #[test]
    fn noc_faults_rejects_bad_input() {
        assert!(matches!(
            call(&["noc-faults", "--bers", "soup"]).unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            call(&["noc-faults", "--bers", "1.5"]).unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            call(&["noc-faults", "--bers", "0", "--swings", "300"]).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn express_prints_tradeoff() {
        let out = call(&["express", "--interval", "4"]).unwrap();
        assert!(out.contains("hop"));
        assert!(out.contains("energy"));
    }

    #[test]
    fn sizing_prints_candidates() {
        let out = call(&["sizing"]).unwrap();
        assert!(out.contains("M1"));
        assert!(out.contains("viable"));
    }

    #[test]
    fn shmoo_renders_map() {
        let out = call(&["shmoo", "--bits", "64"]).unwrap();
        assert!(out.contains('+'));
        assert!(out.contains("passing fraction"));
    }

    #[test]
    fn supply_lists_rails() {
        let out = call(&["supply"]).unwrap();
        assert!(out.contains("800 mV"));
        assert!(out.contains("fJ/b/mm"));
    }

    #[test]
    fn temp_sweeps_cleanly() {
        let out = call(&["temp"]).unwrap();
        assert!(out.contains("-40"));
        assert!(out.contains("105"));
    }

    #[test]
    fn bathtub_renders_wall() {
        let out = call(&["bathtub", "--bits", "200"]).unwrap();
        assert!(out.contains("clean") || out.contains("BER"));
    }

    #[test]
    fn crosstalk_lists_scenarios() {
        let out = call(&["crosstalk"]).unwrap();
        assert!(out.contains("WorstCase"));
        assert!(out.contains("Shielded"));
    }
}
