//! The `srlr` binary: see [`srlr_cli`] for the command set.
//!
//! Exit codes follow the usual shell convention: `0` on success, `1`
//! when an experiment fails to run, and `2` for usage errors (unknown
//! commands, malformed flags) so scripts can tell the two apart.

use srlr_cli::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match srlr_cli::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("srlr: {err}");
            match err {
                CliError::Usage(_) => ExitCode::from(2),
                CliError::Experiment(_) => ExitCode::FAILURE,
            }
        }
    }
}
