//! The `srlr` binary: see [`srlr_cli`] for the command set.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match srlr_cli::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("srlr: {err}");
            ExitCode::FAILURE
        }
    }
}
