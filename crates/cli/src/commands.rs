//! The subcommand implementations.

use crate::args::Flags;
use crate::CliError;
use srlr_core::sizing::SizingExplorer;
use srlr_core::SrlrDesign;
use srlr_link::ber::BerTester;
use srlr_link::montecarlo::{McEngine, McExperiment};
use srlr_link::{measure_eye, ComparisonTable, LinkConfig, LinkErrorModel, SrlrLink};
use srlr_lint::{sarif, Config as LintConfig};
use srlr_noc::traffic::Pattern;
use srlr_noc::{
    ber_sweep_observed, DatapathKind, ExpressComparison, ExpressTopology, FaultConfig, Mesh,
    Network, NocConfig, PowerModel,
};
use srlr_tech::Technology;
use srlr_telemetry::sarif::SarifDoc;
use srlr_telemetry::{Collector, Obs, Progress, RunReport, Value};
use srlr_units::{DataRate, Voltage};
use std::fmt::Write as _;

/// The help text.
pub fn help() -> String {
    "srlr — reproduce the DATE'13 SRLR paper's experiments\n\
     \n\
     commands:\n\
       table1                           Table I + Sec. IV headline numbers\n\
       fig6   [--runs N] [--threads T] [--engine batched|scalar]\n\
              [--batch-width W]        Monte Carlo error probability vs swing\n\
       fig8                             energy vs bandwidth density sweep\n\
       waveforms                        Fig. 4 transient waveforms (ASCII)\n\
       ber    [--bits N] [--gbps R]     PRBS bit-error-rate run\n\
       eye    [--bits N]                demodulator eye margins\n\
       noc    [--cols C] [--rows R] [--load F] [--datapath srlr|full]\n\
       noc-faults [--bers L | --swings MV] [--load F] [--threads T]\n\
                                        BER-driven fault injection sweep:\n\
                                        delivered rate, p99 latency, retry\n\
                                        energy (swings in mV measure the\n\
                                        link's effective BER first)\n\
       express [--interval K]           express-channel trade-off analysis\n\
       sizing                           M1/M2 design-space sweep\n\
       shmoo  [--bits N] [--threads T]  rate x swing pass/fail map\n\
       supply                           VDD-scaling frontier\n\
       temp                             temperature sweep (-40..105 C)\n\
       bathtub [--jitter PS] [--threads T]  BER vs rate under width jitter\n\
       crosstalk                        neighbour-activity scenarios\n\
       lint   [--root DIR] [--format text|sarif] [--deny-all]\n\
                                        workspace static analysis (see\n\
                                        srlr-lint --list-rules)\n\
       verify-noc [--cols C] [--rows R] [--ber B] [--retries LIST]\n\
              [--packet-len L] [--variant correct|no-watermark]\n\
              [--format text|json|sarif]\n\
                                        exhaustive model check of the\n\
                                        retry protocol: deadlock-freedom,\n\
                                        no overtaking, termination, and\n\
                                        the exact DTMC delivery rate\n\
       profile --in FILE [--top N]      rank a folded profile's frames\n\
                                        by self time (hotspot table)\n\
       bench-diff --old A --new B [--tolerance F] [--abs-tolerance F]\n\
              [--ignore csv]            structured diff of two run\n\
                                        reports / bench snapshots; exit\n\
                                        1 on an out-of-band change (the\n\
                                        CI perf-regression gate)\n\
       help                             this text\n\
     \n\
     --threads T: worker threads (0 or unset = SRLR_THREADS env var, then\n\
     the machine). Results are identical at every thread count.\n\
     \n\
     telemetry (fig6, waveforms, noc, noc-faults, verify-noc):\n\
       --trace-out FILE     Chrome trace_event JSON (Perfetto-loadable)\n\
       --events-out FILE    JSONL structured-event stream\n\
       --metrics-out FILE   versioned machine-readable run report\n\
       --profile-out FILE   folded-stack self-profile (speedscope /\n\
                            inferno-compatible; see `srlr profile`)\n\
       --progress           decile progress to stderr (fig6, noc-faults)\n\
     Telemetry never perturbs results and its files are bit-identical at\n\
     every --threads count; profile timing lives in its own sink.\n"
        .to_owned()
}

/// `srlr bathtub [--jitter PS] [--threads T]`.
pub fn bathtub(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(rest, &["jitter", "bits", "threads"])?;
    let jitter_ps: f64 = flags.get_or("jitter", 3.0)?;
    let bits: usize = flags.get_or("bits", 2000)?;
    let threads = parse_threads(&flags)?;
    if jitter_ps < 0.0 || bits == 0 {
        return Err(CliError::Usage(
            "need non-negative jitter, positive bits".into(),
        ));
    }
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let rates: Vec<DataRate> = (7..=14)
        .map(|i| DataRate::from_gigabits_per_second(f64::from(i) * 0.5))
        .collect();
    let curve = srlr_link::bathtub::rate_bathtub_with_threads(
        &tech,
        &design,
        &rates,
        srlr_units::TimeInterval::from_picoseconds(jitter_ps),
        bits,
        8,
        threads,
    );
    Ok(format!(
        "BER bathtub with {jitter_ps} ps/stage width jitter\n\n{}",
        srlr_link::bathtub::render(&curve)
    ))
}

/// Parses the shared `--threads` flag: `0` (the default) means "decide
/// automatically" (`SRLR_THREADS`, then the machine); any other value
/// forces that worker count.
fn parse_threads(flags: &Flags) -> Result<Option<usize>, CliError> {
    let threads: usize = flags.get_or("threads", 0)?;
    Ok(if threads == 0 { None } else { Some(threads) })
}

/// The telemetry file-output flags accepted by the instrumented
/// subcommands (`fig6`, `waveforms`, `noc`, `noc-faults`,
/// `verify-noc`).
const TELEMETRY_FLAGS: [&str; 4] = ["trace-out", "metrics-out", "events-out", "profile-out"];

/// Parsed telemetry options of one invocation.
#[derive(Debug, Default)]
struct TelemetryOpts {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    events_out: Option<String>,
    profile_out: Option<String>,
    progress: bool,
}

impl TelemetryOpts {
    /// Reads the telemetry flags (and the `--progress` switch, where the
    /// command accepts it) out of parsed flags.
    fn from_flags(flags: &Flags) -> Self {
        Self {
            trace_out: flags.get_str("trace-out").map(str::to_owned),
            metrics_out: flags.get_str("metrics-out").map(str::to_owned),
            events_out: flags.get_str("events-out").map(str::to_owned),
            profile_out: flags.get_str("profile-out").map(str::to_owned),
            progress: flags.is_set("progress"),
        }
    }

    /// Whether any file sink was requested (the collector only records
    /// when something will drain it).
    fn wants_collector(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.events_out.is_some()
    }

    /// The observability hooks for a run of `total` work items with
    /// timestamps in `timebase`. With `--profile-out` the profiler runs
    /// on the wall clock; timing lives in its own sink, so the event
    /// stream stays bit-identical whether or not profiling is on.
    fn obs(&self, timebase: &str, label: &str, total: u64) -> Obs {
        Obs {
            collector: if self.wants_collector() {
                Collector::enabled(timebase)
            } else {
                Collector::disabled()
            },
            progress: if self.progress {
                Progress::enabled(label, total)
            } else {
                Progress::disabled()
            },
            profiler: if self.profile_out.is_some() {
                srlr_telemetry::Profiler::enabled(srlr_telemetry::Clock::wall())
            } else {
                srlr_telemetry::Profiler::disabled()
            },
        }
    }

    /// Writes the folded-stack profile (`--profile-out`), one
    /// `path;to;frame <self-µs>` line per frame — loadable by
    /// speedscope and `inferno-flamegraph`, diffable by
    /// `srlr bench-diff`, rankable by `srlr profile`.
    fn write_profile(&self, profiler: &srlr_telemetry::Profiler) -> Result<(), CliError> {
        if let Some(path) = &self.profile_out {
            let folded = srlr_prof::fold(&profiler.snapshot());
            write_file(path, folded.as_bytes())?;
        }
        Ok(())
    }

    /// Drains the run's telemetry into the requested files: the Chrome
    /// `trace_event` document (`--trace-out`), the JSONL event stream
    /// (`--events-out`) and the versioned run report (`--metrics-out`).
    fn write(&self, collector: &Collector, report: &RunReport) -> Result<(), CliError> {
        if let Some(path) = &self.trace_out {
            write_file(path, collector.chrome_trace_json().as_bytes())?;
        }
        if let Some(path) = &self.events_out {
            let mut buf = Vec::new();
            collector
                .write_events_jsonl(&mut buf)
                .map_err(|e| CliError::Experiment(format!("cannot render `{path}`: {e}")))?;
            write_file(path, &buf)?;
        }
        if let Some(path) = &self.metrics_out {
            write_file(path, report.to_json().as_bytes())?;
        }
        Ok(())
    }
}

/// Writes one telemetry artifact, mapping I/O failure to an experiment
/// error.
fn write_file(path: &str, contents: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::Experiment(format!("cannot write `{path}`: {e}")))
}

/// `srlr crosstalk`.
pub fn crosstalk() -> Result<String, CliError> {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let mut out = String::from("neighbour-activity (crosstalk) scenarios\n\n");
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>20}",
        "neighbours", "cliff", "energy @4.1 Gb/s"
    );
    for p in srlr_link::crosstalk::crosstalk_sweep(&tech, &design) {
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>14.1} fJ/b/mm",
            format!("{:?}", p.activity),
            p.max_rate.map_or("fails".to_owned(), |r| format!(
                "{:.1} Gb/s",
                r.gigabits_per_second()
            )),
            p.energy.femtojoules_per_bit_per_millimeter(),
        );
    }
    Ok(out)
}

/// `srlr shmoo [--bits N] [--threads T]`.
pub fn shmoo(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(rest, &["bits", "threads"])?;
    let bits: usize = flags.get_or("bits", 512)?;
    let threads = parse_threads(&flags)?;
    if bits == 0 {
        return Err(CliError::Usage("--bits must be positive".into()));
    }
    let tech = Technology::soi45();
    let plot = srlr_link::shmoo::paper_shmoo_with_threads(&tech, bits, threads);
    Ok(format!(
        "rate x swing shmoo, nominal die ('+' pass, '.' fail)\n\n{}\npassing fraction: {:.0} %\n",
        plot.render(),
        plot.pass_fraction() * 100.0
    ))
}

/// `srlr supply`.
pub fn supply() -> Result<String, CliError> {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let vdds: Vec<Voltage> = (6..=10)
        .map(|i| Voltage::from_volts(f64::from(i) / 10.0))
        .collect();
    let points = srlr_link::supply::supply_sweep(&tech, &design, &vdds);
    if points.is_empty() {
        return Err(CliError::Experiment("no rail could signal".into()));
    }
    let mut out = String::from("VDD scaling (rated at 0.7 x cliff)\n\n");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>16} {:>12}",
        "VDD", "cliff", "energy", "power"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>8} {:>9.1} Gb/s {:>12.1} fJ/b/mm {:>9.2} mW",
            p.vdd.to_string(),
            p.max_rate.gigabits_per_second(),
            p.energy.femtojoules_per_bit_per_millimeter(),
            p.power.milliwatts(),
        );
    }
    Ok(out)
}

/// `srlr temp`.
pub fn temp() -> Result<String, CliError> {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let mut out =
        String::from("temperature sweep at 4.1 Gb/s (adaptive bias tracking; PRBS 4k bits)\n\n");
    let _ = writeln!(
        out,
        "{:>14} {:>10} {:>14}",
        "temperature", "errors", "worst ISI"
    );
    for celsius in [-40.0, 0.0, 27.0, 60.0, 85.0, 105.0] {
        let t = srlr_tech::Temperature::from_celsius(celsius);
        let var = t.as_variation();
        let link = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &var);
        let mut gen = srlr_link::Prbs::prbs15();
        let bits = gen.take_bits(4096);
        let outcome = link.transmit(&bits);
        let errors = bits
            .iter()
            .zip(&outcome.received)
            .filter(|(a, b)| a != b)
            .count();
        let _ = writeln!(
            out,
            "{:>14} {:>10} {:>14}",
            t.to_string(),
            errors,
            outcome.max_baseline.to_string()
        );
    }
    Ok(out)
}

/// `srlr table1`.
pub fn table1() -> Result<String, CliError> {
    let tech = Technology::soi45();
    let mut out = ComparisonTable::paper_table1(&tech).render();
    let metrics = SrlrLink::paper_test_chip(&tech).metrics();
    let _ = writeln!(out, "\nmeasured test chip: {metrics}");
    Ok(out)
}

/// `srlr fig6 [--runs N] [--threads T] [--engine E] [--batch-width W]`
/// plus the telemetry flags: the proposed-design sweep records one
/// `trial` span per die. `--engine scalar` runs the one-die-at-a-time
/// reference; both engines are bit-identical by contract.
pub fn fig6(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse_with_switches(
        rest,
        &[
            "runs",
            "threads",
            "engine",
            "batch-width",
            "trace-out",
            "metrics-out",
            "events-out",
            "profile-out",
        ],
        &["progress"],
    )?;
    let runs: usize = flags.get_or("runs", 300)?;
    let threads = parse_threads(&flags)?;
    if runs == 0 {
        return Err(CliError::Usage("--runs must be positive".into()));
    }
    let mc_engine = match flags.get_str("engine") {
        None | Some("batched") => McEngine::Batched,
        Some("scalar") => McEngine::Scalar,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--engine must be 'batched' or 'scalar', got '{other}'"
            )))
        }
    };
    let batch_width: usize = flags.get_or("batch-width", 32)?;
    if batch_width == 0 {
        return Err(CliError::Usage("--batch-width must be positive".into()));
    }
    let tel = TelemetryOpts::from_flags(&flags);
    let tech = Technology::soi45();
    let exp = McExperiment::paper_default(&tech)
        .with_runs(runs)
        .with_threads(threads)
        .with_engine(mc_engine)
        .with_batch_width(batch_width);
    let mut out = format!("Monte Carlo over {runs} dice per point\n\n");
    let swings: Vec<Voltage> = (7..=11)
        .map(|i| Voltage::from_millivolts(f64::from(i) * 50.0))
        .collect();
    let _ = writeln!(
        out,
        "{:>9} {:>22} {:>22}",
        "swing", "proposed", "straightforward"
    );
    let mut obs = tel.obs("trial-index", "fig6", (runs * swings.len()) as u64);
    let sweep_p = exp.swing_sweep_observed(&SrlrDesign::paper_proposed(&tech), &swings, &mut obs);
    let sweep_s = exp.swing_sweep(&SrlrDesign::straightforward(&tech), &swings);
    for ((swing, p), (_, s)) in sweep_p.iter().zip(&sweep_s) {
        let _ = writeln!(
            out,
            "{:>9} {:>22} {:>22}",
            swing.to_string(),
            p.to_string(),
            s.to_string()
        );
    }
    let (p, s, ratio) = exp.immunity_ratio();
    let _ = writeln!(
        out,
        "\nimmunity at the fabrication swing: proposed {p}, straightforward {s} => ratio {ratio:.2}x (paper: 3.7x)"
    );
    let mut report = RunReport::new("fig6");
    report.param("runs", Value::U64(runs as u64));
    report.param("swings", Value::U64(swings.len() as u64));
    report.metric("proposed_error_probability", Value::F64(p.estimate()));
    report.metric(
        "straightforward_error_probability",
        Value::F64(s.estimate()),
    );
    report.metric("immunity_ratio", Value::F64(ratio));
    report.absorb_collector(&obs.collector);
    tel.write(&obs.collector, &report)?;
    tel.write_profile(&obs.profiler)?;
    Ok(out)
}

/// `srlr fig8`.
pub fn fig8() -> Result<String, CliError> {
    let tech = Technology::soi45();
    let mut out = String::from("energy vs bandwidth density (rated at 0.7 x cliff)\n\n");
    let _ = writeln!(out, "{:<28} {:>12} {:>16}", "point", "Gb/s/um", "fJ/bit/cm");
    for p in srlr_bench::fig8_measured_series(&tech, &[0.2, 0.3, 0.5, 0.7]) {
        let _ = writeln!(
            out,
            "{:<28} {:>12.3} {:>16.1}",
            p.label, p.bandwidth_density_gbps_um, p.energy_fj_per_bit_cm
        );
    }
    for p in srlr_bench::fig8_published_points() {
        let _ = writeln!(
            out,
            "{:<28} {:>12.3} {:>16.1}",
            p.label, p.bandwidth_density_gbps_um, p.energy_fj_per_bit_cm
        );
    }
    Ok(out)
}

/// `srlr waveforms` plus the telemetry flags: the run report and
/// metrics carry the transient integrator's step statistics.
pub fn waveforms(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(rest, &TELEMETRY_FLAGS)?;
    let tel = TelemetryOpts::from_flags(&flags);
    let tech = Technology::soi45();
    let mut obs = tel.obs("sim-s", "waveforms", 1);
    let mut collector = std::mem::take(&mut obs.collector);
    obs.profiler.enter("waveforms.transient");
    let waves = srlr_core::transient::SrlrTransientFixture::fig4_observed(&tech, &mut collector);
    obs.profiler.exit();
    let mut out = String::new();
    let _ = writeln!(out, "IN (peak {}):", waves.input.peak());
    out.push_str(&waves.input.ascii_plot(8, 80));
    let _ = writeln!(out, "\nnode X:");
    out.push_str(&waves.node_x.ascii_plot(8, 80));
    let _ = writeln!(out, "\nOUT (peak {}):", waves.output.peak());
    out.push_str(&waves.output.ascii_plot(8, 80));
    let _ = writeln!(out, "\nNEXT IN (peak {}):", waves.next_input.peak());
    out.push_str(&waves.next_input.ascii_plot(8, 80));
    let mut report = RunReport::new("waveforms");
    report.metric("input_peak_v", Value::F64(waves.input.peak().volts()));
    report.metric("output_peak_v", Value::F64(waves.output.peak().volts()));
    report.metric(
        "next_input_peak_v",
        Value::F64(waves.next_input.peak().volts()),
    );
    report.absorb_collector(&collector);
    tel.write(&collector, &report)?;
    tel.write_profile(&obs.profiler)?;
    Ok(out)
}

/// `srlr ber [--bits N] [--gbps R]`.
pub fn ber(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(rest, &["bits", "gbps"])?;
    let bits: usize = flags.get_or("bits", 1_000_000)?;
    let gbps: f64 = flags.get_or("gbps", 4.1)?;
    if bits == 0 || gbps <= 0.0 {
        return Err(CliError::Usage("--bits and --gbps must be positive".into()));
    }
    let tech = Technology::soi45();
    let config =
        LinkConfig::paper_default().with_data_rate(DataRate::from_gigabits_per_second(gbps));
    let link = SrlrLink::on_die(
        &tech,
        &SrlrDesign::paper_proposed(&tech),
        config,
        &srlr_tech::GlobalVariation::nominal(),
    );
    let report = BerTester::prbs15().run(&link, bits);
    Ok(format!(
        "{report}\nenergy per bit: {}\n",
        report.energy_per_bit()
    ))
}

/// `srlr eye [--bits N]`.
pub fn eye(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(rest, &["bits"])?;
    let bits: usize = flags.get_or("bits", 5_000)?;
    if bits == 0 {
        return Err(CliError::Usage("--bits must be positive".into()));
    }
    let tech = Technology::soi45();
    let link = SrlrLink::paper_test_chip(&tech);
    let eye = measure_eye(&link, bits);
    Ok(format!(
        "{eye}\nopen: {}\n",
        if eye.is_open() { "yes" } else { "NO" }
    ))
}

/// `srlr noc [...]` plus the telemetry flags: with any telemetry sink
/// requested, the run traces the full flit lifecycle (inject, route,
/// CRC fail, retry, eject) and reports per-link utilisation.
pub fn noc(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(
        rest,
        &[
            "cols",
            "rows",
            "load",
            "datapath",
            "cycles",
            "trace-out",
            "metrics-out",
            "events-out",
            "profile-out",
        ],
    )?;
    let tel = TelemetryOpts::from_flags(&flags);
    let cols: u16 = flags.get_or("cols", 8)?;
    let rows: u16 = flags.get_or("rows", 8)?;
    let load: f64 = flags.get_or("load", 0.05)?;
    let cycles: u64 = flags.get_or("cycles", 2000)?;
    if cols == 0 || rows == 0 || !(0.0..=1.0).contains(&load) || cycles == 0 {
        return Err(CliError::Usage(
            "need positive size/cycles and load in [0, 1]".into(),
        ));
    }
    let datapath = match flags.get_str("datapath").unwrap_or("srlr") {
        "srlr" => DatapathKind::SrlrLowSwing,
        "full" => DatapathKind::FullSwingRepeated,
        other => {
            return Err(CliError::Usage(format!(
                "--datapath must be `srlr` or `full`, got `{other}`"
            )))
        }
    };
    let tech = Technology::soi45();
    let config = NocConfig::paper_default()
        .with_size(cols, rows)
        .with_datapath(datapath);
    let mut net = Network::new(config);
    if tel.wants_collector() {
        net.enable_flit_telemetry();
    }
    let mut obs = tel.obs("cycle", "noc", cycles);
    let stats = net.run_warmup_and_measure_profiled(
        Pattern::UniformRandom,
        load,
        cycles / 4,
        cycles,
        &mut obs.profiler,
    );
    let model = PowerModel::for_datapath(&tech, config.flit_bits, datapath);
    let power = model.report(&stats.energy, cycles, config.clock, config.mesh().len());
    let collector = net.take_flit_telemetry().unwrap_or_default();
    let mut report = RunReport::new("noc");
    report.param("cols", Value::U64(u64::from(cols)));
    report.param("rows", Value::U64(u64::from(rows)));
    report.param("load", Value::F64(load));
    report.param("cycles", Value::U64(cycles));
    report.param("datapath", Value::Str(datapath.to_string()));
    report.metric("packets_injected", Value::U64(stats.packets_injected));
    report.metric("packets_received", Value::U64(stats.packets_received));
    if stats.packets_received > 0 {
        report.metric("avg_latency_cycles", Value::F64(stats.avg_latency_cycles()));
        report.metric(
            "throughput_flits_per_node_cycle",
            Value::F64(stats.throughput_flits_per_node_cycle()),
        );
    }
    for (name, value) in stats.latency_histogram.summary().metric_fields("latency") {
        report.metric(&name, value);
    }
    report.absorb_collector(&collector);
    tel.write(&collector, &report)?;
    tel.write_profile(&obs.profiler)?;
    Ok(format!(
        "{cols}x{rows} mesh, {datapath}, load {load}\ntraffic: {stats}\npower:   {power}\n"
    ))
}

/// Parses a comma-separated list of numbers (`"0,1e-5,1e-3"`).
fn parse_list(name: &str, raw: &str) -> Result<Vec<f64>, CliError> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| CliError::Usage(format!("flag `--{name}` got unparsable entry `{s}`")))
        })
        .collect()
}

/// `srlr noc-faults [...]`: the fault-injection sweep. Either sweeps the
/// injected BER directly (`--bers`, comma-separated), or sweeps link
/// swing voltages (`--swings`, mV): each swing is measured over Monte
/// Carlo dice with the link physics and its *effective* BER (Wilson
/// upper bound when error-free) drives the injector.
pub fn noc_faults(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse_with_switches(
        rest,
        &[
            "cols",
            "rows",
            "load",
            "cycles",
            "bers",
            "swings",
            "dice",
            "bits",
            "max-retries",
            "threads",
            "trace-out",
            "metrics-out",
            "events-out",
            "profile-out",
        ],
        &["progress"],
    )?;
    let tel = TelemetryOpts::from_flags(&flags);
    let cols: u16 = flags.get_or("cols", 8)?;
    let rows: u16 = flags.get_or("rows", 8)?;
    let load: f64 = flags.get_or("load", 0.05)?;
    let cycles: u64 = flags.get_or("cycles", 2000)?;
    let max_retries: u32 = flags.get_or("max-retries", 4)?;
    let dice: usize = flags.get_or("dice", 30)?;
    let bits: usize = flags.get_or("bits", 400)?;
    let threads = parse_threads(&flags)?;
    if cols == 0 || rows == 0 || !(0.0..=1.0).contains(&load) || cycles == 0 {
        return Err(CliError::Usage(
            "need positive size/cycles and load in [0, 1]".into(),
        ));
    }
    if flags.get_str("bers").is_some() && flags.get_str("swings").is_some() {
        return Err(CliError::Usage(
            "--bers and --swings are mutually exclusive".into(),
        ));
    }

    let mut header = format!("{cols}x{rows} mesh, load {load}, {max_retries} retries/flit\n");
    let (labels, bers): (Vec<String>, Vec<f64>) = if let Some(raw) = flags.get_str("swings") {
        if dice == 0 || bits == 0 {
            return Err(CliError::Usage("--dice and --bits must be positive".into()));
        }
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let mut labels = Vec::new();
        let mut bers = Vec::new();
        let _ = writeln!(
            header,
            "link BER measured over {dice} dice x {bits} PRBS bits per swing"
        );
        for mv in parse_list("swings", raw)? {
            if !(mv.is_finite() && mv > 0.0) {
                return Err(CliError::Usage(format!("bad swing `{mv}` mV")));
            }
            let point = design.with_nominal_swing(Voltage::from_millivolts(mv));
            let model = LinkErrorModel::measure(
                &tech,
                &point,
                LinkConfig::paper_default(),
                dice,
                bits,
                2013,
                threads,
            );
            // A completely broken swing can report BER -> 1; the injector
            // needs [0, 1), and beyond ~0.5 every word is corrupt anyway.
            bers.push(model.effective_ber().min(0.5));
            labels.push(format!("{mv:.0} mV"));
            let _ = writeln!(header, "  {mv:>5.0} mV: {model}");
        }
        (labels, bers)
    } else {
        let raw = flags.get_str("bers").unwrap_or("0,1e-5,1e-4,1e-3,1e-2");
        let bers = parse_list("bers", raw)?;
        for &b in &bers {
            if !(b.is_finite() && (0.0..1.0).contains(&b)) {
                return Err(CliError::Usage(format!("BER `{b}` outside [0, 1)")));
            }
        }
        (bers.iter().map(|b| format!("{b:.1e}")).collect(), bers)
    };
    if bers.is_empty() {
        return Err(CliError::Usage("need at least one sweep point".into()));
    }

    let config = NocConfig::paper_default().with_size(cols, rows);
    let template = FaultConfig::new(0.0).with_max_retries(max_retries);
    let mut obs = tel.obs("point-index", "noc-faults", bers.len() as u64);
    let points = ber_sweep_observed(
        config,
        template,
        Pattern::UniformRandom,
        load,
        cycles / 4,
        cycles,
        &bers,
        threads,
        &mut obs,
    );

    let tech = Technology::soi45();
    let model = PowerModel::for_datapath(&tech, config.flit_bits, config.datapath);
    let mut out = header;
    let _ = writeln!(
        out,
        "\n{:>10} {:>10} {:>10} {:>8} {:>9} {:>8} {:>14}",
        "point", "ber", "delivered", "p99", "retries", "dropped", "energy/bit"
    );
    for (label, point) in labels.iter().zip(&points) {
        let stats = &point.stats;
        let p99 = stats.latency_percentile(99.0).map_or_else(
            || format!(">{}", stats.latency_histogram.bins()),
            |v| v.to_string(),
        );
        let delivered_bits =
            stats.packets_received as f64 * (config.packet_len * config.flit_bits) as f64;
        let energy = model.dynamic_energy(&stats.energy);
        let per_bit = if delivered_bits > 0.0 {
            format!("{:.1} fJ/bit", energy.joules() / delivered_bits * 1e15)
        } else {
            "n/a".to_owned()
        };
        let _ = writeln!(
            out,
            "{:>10} {:>10.1e} {:>9.2}% {:>8} {:>9} {:>8} {:>14}",
            label,
            point.ber,
            stats.delivered_fraction() * 100.0,
            p99,
            stats.faults.flits_retransmitted,
            stats.packets_dropped,
            per_bit,
        );
    }
    let mut report = RunReport::new("noc-faults");
    report.param("cols", Value::U64(u64::from(cols)));
    report.param("rows", Value::U64(u64::from(rows)));
    report.param("load", Value::F64(load));
    report.param("cycles", Value::U64(cycles));
    report.param("max_retries", Value::U64(u64::from(max_retries)));
    report.param("points", Value::U64(points.len() as u64));
    for (i, (label, point)) in labels.iter().zip(&points).enumerate() {
        let section = format!("point.{i:03}");
        report.section_metric(&section, "label", Value::Str(label.clone()));
        report.section_metric(&section, "ber", Value::F64(point.ber));
        report.section_metric(
            &section,
            "delivered_fraction",
            Value::F64(point.stats.delivered_fraction()),
        );
        report.section_metric(
            &section,
            "flits_retransmitted",
            Value::U64(point.stats.faults.flits_retransmitted),
        );
        report.section_metric(
            &section,
            "packets_dropped",
            Value::U64(point.stats.packets_dropped),
        );
    }
    report.absorb_collector(&obs.collector);
    tel.write(&obs.collector, &report)?;
    tel.write_profile(&obs.profiler)?;
    Ok(out)
}

/// `srlr profile --in FILE [--top N]`: ranks the frames of a folded
/// profile (written by any sim subcommand's `--profile-out`) by self
/// time and prints the top-N hotspot table.
pub fn profile(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(rest, &["in", "top"])?;
    let path = flags
        .get_str("in")
        .ok_or_else(|| CliError::Usage("profile needs --in FILE".into()))?;
    let top: usize = flags.get_or("top", 10)?;
    if top == 0 {
        return Err(CliError::Usage("--top must be positive".into()));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Experiment(format!("cannot read `{path}`: {e}")))?;
    let lines = srlr_prof::parse_folded(&text)
        .map_err(|e| CliError::Experiment(format!("`{path}` is not a folded profile: {e}")))?;
    let spots = srlr_prof::hotspots_folded(&lines, top);
    Ok(format!(
        "top {} of {} frames by self time ({path})\n\n{}",
        spots.len(),
        lines.len(),
        srlr_prof::render_table(&spots)
    ))
}

/// `srlr bench-diff --old A --new B [--tolerance F] [--abs-tolerance F]
/// [--ignore csv]`: structured diff of two run reports / bench
/// snapshots (any scalar-leaved JSON). Exit `0` when every change sits
/// inside the tolerance band, `1` on a regression (the CI gate), `2`
/// on usage errors — mirroring `lint`.
pub fn bench_diff(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(
        rest,
        &["old", "new", "tolerance", "abs-tolerance", "ignore"],
    )?;
    let old_path = flags
        .get_str("old")
        .ok_or_else(|| CliError::Usage("bench-diff needs --old FILE".into()))?;
    let new_path = flags
        .get_str("new")
        .ok_or_else(|| CliError::Usage("bench-diff needs --new FILE".into()))?;
    let rel_tol: f64 = flags.get_or("tolerance", 0.0)?;
    let abs_tol: f64 = flags.get_or("abs-tolerance", 0.0)?;
    if !(rel_tol.is_finite() && rel_tol >= 0.0 && abs_tol.is_finite() && abs_tol >= 0.0) {
        return Err(CliError::Usage(
            "tolerances must be finite and non-negative".into(),
        ));
    }
    let ignore: Vec<String> = flags
        .get_str("ignore")
        .map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default();
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Experiment(format!("cannot read `{path}`: {e}")))
    };
    let opts = srlr_prof::DiffOptions {
        rel_tol,
        abs_tol,
        ignore,
    };
    let report = srlr_prof::diff_reports(&read(old_path)?, &read(new_path)?, &opts)
        .map_err(CliError::Experiment)?;
    let out = format!("old: {old_path}\nnew: {new_path}\n{}", report.render());
    if report.regressed() {
        Err(CliError::Experiment(out))
    } else {
        Ok(out)
    }
}

/// `srlr express [--interval K]`.
pub fn express(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(rest, &["interval"])?;
    let interval: u16 = flags.get_or("interval", 4)?;
    if !(2..8).contains(&interval) {
        return Err(CliError::Usage("--interval must be in 2..8".into()));
    }
    let tech = Technology::soi45();
    let topo = ExpressTopology::new(Mesh::new(8, 8), interval);
    let c = ExpressComparison::evaluate(&tech, topo);
    let (e, l) = c.express_avg_hops;
    Ok(format!(
        "express interval {interval} on an 8x8 mesh\n\
         avg hops: mesh {:.2} vs express {:.2} ({:.2} express + {:.2} local) => {:.0} % fewer router visits\n\
         avg datapath energy/bit: mesh {} vs express {} (ratio {:.2}x)\n\
         driver area per express bit-lane: {:.0} um^2 vs {:.1} um^2 SRLR ({:.0}x)\n\
         extra ports at express stations: {}\n",
        c.srlr_avg_hops,
        e + l,
        e,
        l,
        c.hop_reduction() * 100.0,
        c.srlr_energy_per_bit,
        c.express_energy_per_bit,
        c.energy_ratio(),
        c.express_driver_area.square_micrometers(),
        c.srlr_cell_area.square_micrometers(),
        c.driver_area_ratio(),
        topo.extra_ports_at_stations(),
    ))
}

/// `srlr sizing`.
pub fn sizing() -> Result<String, CliError> {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let explorer = SizingExplorer::new(&tech, design, 10);
    let um = srlr_units::Length::from_micrometers;
    let m1 = [um(0.15), um(0.3), um(0.6), um(1.2)];
    let m2 = [um(0.06), um(0.12), um(0.3)];
    let mut out = String::from("M1/M2 sizing sweep (10-stage chain, nominal + 5 corners)\n\n");
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>8} {:>9} {:>14} {:>16}",
        "M1 [um]", "M2 [um]", "nominal", "corners", "margin [mV]", "fJ/bit/mm"
    );
    for c in explorer.sweep(&m1, &m2) {
        let _ = writeln!(
            out,
            "{:>8.2} {:>8.2} {:>8} {:>8}/5 {:>14.1} {:>16.1}",
            c.m1_width.micrometers(),
            c.m2_width.micrometers(),
            if c.works_nominal { "ok" } else { "FAIL" },
            c.corners_passed,
            c.sense_margin.millivolts(),
            c.energy.femtojoules_per_bit_per_millimeter(),
        );
    }
    let best = explorer
        .best(&m1, &m2)
        .ok_or_else(|| CliError::Experiment("no viable sizing found".into()))?;
    let _ = writeln!(
        out,
        "\nlowest-energy viable point: M1 {:.2} um / M2 {:.2} um",
        best.m1_width.micrometers(),
        best.m2_width.micrometers()
    );
    Ok(out)
}

/// `srlr lint [--root DIR] [--format text|sarif] [--deny-all]`.
///
/// Delegates to [`srlr_lint::run`]: exit `0` when the tree is clean,
/// `1` on violations (or stale baseline entries under `--deny-all`) and
/// `2` for usage errors, matching the standalone `srlr-lint` binary.
/// `--format sarif` always succeeds so CI can upload the document as an
/// artifact even when findings gate — the same contract as
/// `verify-noc --format sarif`.
pub fn lint(rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse_with_switches(rest, &["root", "format"], &["deny-all"])?;
    let root = flags.get_str("root").unwrap_or(".").to_owned();
    let format = flags.get_str("format").unwrap_or("text");
    if !matches!(format, "text" | "sarif") {
        return Err(CliError::Usage(format!(
            "unknown lint format `{format}` (text|sarif)"
        )));
    }

    let config = LintConfig::new(root);
    let report = srlr_lint::run(&config).map_err(|e| CliError::Experiment(e.to_string()))?;

    let failures = report.failures().count();
    let stale_fails = flags.is_set("deny-all") && !report.stale.is_empty();
    let clean = failures == 0 && !stale_fails;

    let mut out = String::new();
    if format == "sarif" {
        // The findings travel inside the document; exporting must not
        // fail the run or CI loses the artifact it came for.
        out.push_str(&sarif::render(&report));
        return Ok(out);
    }
    for d in &report.fresh {
        out.push_str(&d.render());
    }
    for key in &report.stale {
        let _ = writeln!(
            out,
            "stale-baseline: `{key}` no longer matches any violation"
        );
    }
    let _ = writeln!(
        out,
        "srlr-lint: {} files checked, {failures} violation(s)",
        report.files_checked
    );
    if clean {
        Ok(out)
    } else {
        // Experiment errors land on stderr with exit 1; keep the
        // diagnostics as the message so they stay visible.
        Err(CliError::Experiment(format!(
            "lint found {failures} violation(s)\n{out}"
        )))
    }
}

/// `srlr verify-noc [...]`: exhaustive model check of the mesh retry
/// protocol via `srlr-model`.
///
/// For every retry budget in `--retries` the checker enumerates the
/// reachable state space of every ordered XY route of the mesh and
/// discharges deadlock-freedom, the no-overtaking watermark invariant
/// and termination, then solves the graph as an absorbing DTMC for the
/// exact delivery probability. `--variant no-watermark` checks the
/// deliberately broken scheduler, which produces replayable
/// counterexample traces (dumped through `--events-out`, rendered in
/// text, and exported as SARIF results).
///
/// Exit behaviour mirrors `lint`: violations fail with exit `1` in
/// `text`/`json` formats; `--format sarif` always succeeds so CI can
/// archive the document from a failing tree (the gate is a text run).
pub fn verify_noc(rest: &[String]) -> Result<String, CliError> {
    use srlr_model::{closed_form_delivery, ModelConfig, Variant};
    use srlr_telemetry::json::{write_f64, write_str};

    let flags = Flags::parse(
        rest,
        &[
            "cols",
            "rows",
            "ber",
            "retries",
            "packet-len",
            "variant",
            "format",
            "trace-out",
            "metrics-out",
            "events-out",
            "profile-out",
        ],
    )?;
    let tel = TelemetryOpts::from_flags(&flags);
    let cols: u16 = flags.get_or("cols", 2)?;
    let rows: u16 = flags.get_or("rows", 2)?;
    let ber: f64 = flags.get_or("ber", 1e-3)?;
    let packet_len: usize = flags.get_or("packet-len", 4)?;
    let format = flags.get_str("format").unwrap_or("text");
    if !matches!(format, "text" | "json" | "sarif") {
        return Err(CliError::Usage(format!(
            "unknown verify-noc format `{format}` (text|json|sarif)"
        )));
    }
    let variant = match flags.get_str("variant").unwrap_or("correct") {
        "correct" => Variant::Correct,
        "no-watermark" => Variant::IgnoreBusyWatermark,
        other => {
            return Err(CliError::Usage(format!(
                "unknown variant `{other}` (correct|no-watermark)"
            )))
        }
    };
    // Exhaustive enumeration is exponential in packet length and route
    // length; these bounds keep a check interactive (well under a
    // second on the 2x2 CI configuration).
    if !(1..=4).contains(&cols) || !(1..=4).contains(&rows) {
        return Err(CliError::Usage("mesh sides must be in 1..=4".into()));
    }
    if !(1..=6).contains(&packet_len) {
        return Err(CliError::Usage("--packet-len must be in 1..=6".into()));
    }
    if !(ber.is_finite() && (0.0..1.0).contains(&ber)) {
        return Err(CliError::Usage(format!("BER `{ber}` outside [0, 1)")));
    }
    let raw = flags.get_str("retries").unwrap_or("0,1,3");
    let mut budgets: Vec<u32> = Vec::new();
    for part in raw.split(',') {
        let budget: u32 = part
            .trim()
            .parse()
            .map_err(|_| CliError::Usage(format!("bad retry budget `{part}`")))?;
        if budget > 6 {
            return Err(CliError::Usage(
                "retry budgets above 6 are unchecked".into(),
            ));
        }
        budgets.push(budget);
    }
    if budgets.is_empty() {
        return Err(CliError::Usage("need at least one retry budget".into()));
    }

    let mut obs = tel.obs("counterexample-step", "verify-noc", budgets.len() as u64);
    let mut reports = Vec::new();
    for &budget in &budgets {
        let config = ModelConfig::new(
            Mesh::new(cols, rows),
            packet_len,
            FaultConfig::new(ber).with_max_retries(budget),
        )
        .with_variant(variant);
        let report = srlr_model::verify_profiled(&config, &mut obs.profiler);
        for violation in report.violations() {
            violation.emit(&mut obs.collector);
        }
        obs.progress.tick();
        reports.push((budget, closed_form_delivery(&config), report));
    }
    let total_violations: usize = reports.iter().map(|(_, _, r)| r.violations().count()).sum();
    let all_proven = reports.iter().all(|(_, _, r)| r.all_proven());

    let mut run_report = RunReport::new("verify-noc");
    run_report.param("cols", Value::U64(u64::from(cols)));
    run_report.param("rows", Value::U64(u64::from(rows)));
    run_report.param("ber", Value::F64(ber));
    run_report.param("packet_len", Value::U64(packet_len as u64));
    run_report.param("variant", Value::Str(variant.name().to_owned()));
    for (i, (budget, closed, report)) in reports.iter().enumerate() {
        let section = format!("budget.{i:03}");
        run_report.section_metric(&section, "max_retries", Value::U64(u64::from(*budget)));
        run_report.section_metric(&section, "states", Value::U64(report.total_states as u64));
        run_report.section_metric(
            &section,
            "transitions",
            Value::U64(report.total_transitions as u64),
        );
        run_report.section_metric(
            &section,
            "deliver_probability",
            Value::F64(report.deliver_probability),
        );
        run_report.section_metric(&section, "closed_form", Value::F64(*closed));
        run_report.section_metric(&section, "deadlock_free", Value::Bool(report.deadlock_free));
        run_report.section_metric(&section, "no_overtaking", Value::Bool(report.no_overtaking));
        run_report.section_metric(&section, "terminates", Value::Bool(report.terminates));
    }
    run_report.absorb_collector(&obs.collector);
    tel.write(&obs.collector, &run_report)?;
    tel.write_profile(&obs.profiler)?;

    let routes = reports.first().map_or(0, |(_, _, r)| r.pairs.len());
    let out = match format {
        "sarif" => {
            let mut doc = SarifDoc::new("srlr-model", "https://example.invalid/srlr-model");
            doc.rule(
                "no-overtaking",
                "a retried wormhole head is never overtaken by its own tail",
            );
            doc.rule(
                "deadlock",
                "every non-terminal state has an enabled crossing",
            );
            doc.rule("termination", "every run ends in Delivered or CountedDrop");
            for (budget, _, report) in &reports {
                for v in report.violations() {
                    let uri = format!(
                        "model://{cols}x{rows}/budget-{budget}/route/{},{}-{},{}",
                        v.src.x, v.src.y, v.dst.x, v.dst.y
                    );
                    doc.result(v.kind.rule(), "error", &v.render(), &uri, 1, 1);
                }
            }
            return Ok(doc.render());
        }
        "json" => {
            let mut out = String::from("{\"mesh\":");
            write_str(&mut out, &format!("{cols}x{rows}"));
            out.push_str(",\"ber\":");
            write_f64(&mut out, ber);
            let _ = write!(out, ",\"packet_len\":{packet_len},\"variant\":");
            write_str(&mut out, variant.name());
            let _ = write!(out, ",\"routes\":{routes},\"budgets\":[");
            for (i, (budget, closed, report)) in reports.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"max_retries\":{budget},\"states\":{},\"transitions\":{},\
                     \"deliver_probability\":",
                    report.total_states, report.total_transitions
                );
                write_f64(&mut out, report.deliver_probability);
                out.push_str(",\"closed_form\":");
                write_f64(&mut out, *closed);
                let _ = write!(
                    out,
                    ",\"deadlock_free\":{},\"no_overtaking\":{},\"terminates\":{},\
                     \"violations\":[",
                    report.deadlock_free, report.no_overtaking, report.terminates
                );
                for (j, v) in report.violations().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"rule\":");
                    write_str(&mut out, v.kind.rule());
                    out.push_str(",\"src\":");
                    write_str(&mut out, &v.src.to_string());
                    out.push_str(",\"dst\":");
                    write_str(&mut out, &v.dst.to_string());
                    let _ = write!(out, ",\"steps\":{},\"message\":", v.trace.len());
                    write_str(&mut out, &v.message);
                    out.push('}');
                }
                out.push_str("]}");
            }
            out.push_str("]}\n");
            out
        }
        _ => {
            let mut out = format!(
                "exhaustive model check: {cols}x{rows} mesh, {packet_len}-flit packets, \
                 ber {ber:.1e}, variant {}\n{routes} ordered routes per budget\n\n",
                variant.name()
            );
            let _ = writeln!(
                out,
                "{:>8} {:>9} {:>12} {:>18} {:>14} {:>14} {:>11}",
                "budget",
                "states",
                "transitions",
                "P(deliver) exact",
                "deadlock-free",
                "overtake-free",
                "terminates"
            );
            for (budget, _, report) in &reports {
                let _ = writeln!(
                    out,
                    "{:>8} {:>9} {:>12} {:>18.12} {:>14} {:>14} {:>11}",
                    budget,
                    report.total_states,
                    report.total_transitions,
                    report.deliver_probability,
                    if report.deadlock_free { "yes" } else { "NO" },
                    if report.no_overtaking { "yes" } else { "NO" },
                    if report.terminates { "yes" } else { "NO" },
                );
            }
            out.push('\n');
            for (budget, _, report) in &reports {
                for v in report.violations() {
                    let _ = writeln!(out, "[budget {budget}] {}", v.render());
                }
            }
            if all_proven {
                let _ = writeln!(out, "all proofs hold across {} budget(s)", reports.len());
            }
            out
        }
    };

    if all_proven {
        Ok(out)
    } else {
        Err(CliError::Experiment(format!(
            "model check found {total_violations} counterexample(s)\n{out}"
        )))
    }
}
