//! End-to-end telemetry contract: the file sinks are bit-identical at
//! every `--threads` count, the trace is valid Chrome `trace_event`
//! JSON, and enabling telemetry never changes a command's stdout.

use srlr_telemetry::json::{parse, Json};
use std::fs;
use std::path::PathBuf;

/// A scratch file that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("srlr-cli-test-{}-{name}", std::process::id()));
        Self(p)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is utf-8")
    }

    fn read(&self) -> Vec<u8> {
        fs::read(&self.0).expect("telemetry file written")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn run(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    srlr_cli::run(&argv).expect("command succeeds")
}

/// Runs `noc-faults` with every sink at the given thread count and
/// returns (stdout, trace bytes, events bytes, metrics bytes).
fn faults_with_sinks(threads: &str, tag: &str) -> (String, Vec<u8>, Vec<u8>, Vec<u8>) {
    let trace = Scratch::new(&format!("{tag}-t{threads}.trace.json"));
    let events = Scratch::new(&format!("{tag}-t{threads}.events.jsonl"));
    let metrics = Scratch::new(&format!("{tag}-t{threads}.report.json"));
    let out = run(&[
        "noc-faults",
        "--cols",
        "4",
        "--rows",
        "4",
        "--cycles",
        "400",
        "--bers",
        "0,5e-4,2e-3",
        "--threads",
        threads,
        "--trace-out",
        trace.path(),
        "--events-out",
        events.path(),
        "--metrics-out",
        metrics.path(),
    ]);
    (out, trace.read(), events.read(), metrics.read())
}

#[test]
fn telemetry_files_are_bit_identical_across_thread_counts() {
    let (out1, trace1, events1, metrics1) = faults_with_sinks("1", "id");
    let (out2, trace2, events2, metrics2) = faults_with_sinks("2", "id");
    let (out8, trace8, events8, metrics8) = faults_with_sinks("8", "id");
    assert_eq!(out1, out2);
    assert_eq!(out1, out8);
    assert_eq!(trace1, trace2, "trace must not depend on --threads");
    assert_eq!(trace1, trace8, "trace must not depend on --threads");
    assert_eq!(events1, events2, "events must not depend on --threads");
    assert_eq!(events1, events8, "events must not depend on --threads");
    assert_eq!(metrics1, metrics2, "report must not depend on --threads");
    assert_eq!(metrics1, metrics8, "report must not depend on --threads");
}

#[test]
fn telemetry_does_not_change_stdout() {
    let plain = run(&[
        "noc-faults",
        "--cols",
        "4",
        "--rows",
        "4",
        "--cycles",
        "400",
        "--bers",
        "0,2e-3",
    ]);
    let trace = Scratch::new("stdout.trace.json");
    let traced = run(&[
        "noc-faults",
        "--cols",
        "4",
        "--rows",
        "4",
        "--cycles",
        "400",
        "--bers",
        "0,2e-3",
        "--trace-out",
        trace.path(),
    ]);
    assert_eq!(plain, traced, "telemetry must never perturb the output");
}

#[test]
fn trace_out_is_valid_chrome_trace_json() {
    let (_, trace, events, metrics) = faults_with_sinks("2", "valid");
    let doc = parse(&String::from_utf8(trace).expect("utf8")).expect("valid trace JSON");
    let spans = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let point_spans: Vec<&Json> = spans
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(point_spans.len(), 3, "one complete span per BER point");
    for span in point_spans {
        assert!(span.get("ts").and_then(Json::as_num).is_some());
        assert!(span.get("dur").and_then(Json::as_num).is_some());
    }

    // Every JSONL line parses on its own.
    let text = String::from_utf8(events).expect("utf8");
    assert!(text.lines().count() > 3);
    for line in text.lines() {
        assert!(parse(line).is_ok(), "invalid JSONL line: {line}");
    }

    // The run report is versioned and carries the sweep sections.
    let report = parse(&String::from_utf8(metrics).expect("utf8")).expect("valid report");
    assert_eq!(
        report.get("srlr_run_report_version").and_then(Json::as_num),
        Some(1.0)
    );
    assert_eq!(
        report.get("name").and_then(Json::as_str),
        Some("noc-faults")
    );
    assert!(report
        .get("sections")
        .and_then(|s| s.get("point.002"))
        .and_then(|p| p.get("delivered_fraction"))
        .and_then(Json::as_num)
        .is_some());
    assert!(report
        .get("metrics")
        .and_then(|m| m.get("ber.point.001.latency.p50"))
        .is_some());
}

#[test]
fn noc_trace_records_the_flit_lifecycle() {
    let events = Scratch::new("noc.events.jsonl");
    let metrics = Scratch::new("noc.report.json");
    let _ = run(&[
        "noc",
        "--cols",
        "4",
        "--rows",
        "4",
        "--load",
        "0.05",
        "--cycles",
        "400",
        "--events-out",
        events.path(),
        "--metrics-out",
        metrics.path(),
    ]);
    let text = String::from_utf8(events.read()).expect("utf8");
    assert!(text.contains("\"name\":\"flit.inject\""));
    assert!(text.contains("\"name\":\"flit.route\""));
    assert!(text.contains("\"name\":\"flit.eject\""));
    let report = parse(&String::from_utf8(metrics.read()).expect("utf8")).expect("valid report");
    let metric = |k: &str| report.get("metrics").and_then(|m| m.get(k)).cloned();
    assert!(metric("link.total_flits").is_some(), "per-link utilisation");
    assert!(metric("counter.flit.packets_ejected").is_some());
    assert!(metric("latency.p50").and_then(|j| j.as_num()).is_some());
}

#[test]
fn waveforms_report_carries_integrator_stats() {
    let metrics = Scratch::new("waveforms.report.json");
    let _ = run(&["waveforms", "--metrics-out", metrics.path()]);
    let report = parse(&String::from_utf8(metrics.read()).expect("utf8")).expect("valid report");
    let steps = report
        .get("metrics")
        .and_then(|m| m.get("transient.steps"))
        .and_then(Json::as_num)
        .expect("integrator step count");
    assert!(steps > 100.0, "a Fig. 4 run takes many steps, got {steps}");
}

#[test]
fn fig6_report_absorbs_mc_counters() {
    let metrics = Scratch::new("fig6.report.json");
    let _ = run(&["fig6", "--runs", "20", "--metrics-out", metrics.path()]);
    let report = parse(&String::from_utf8(metrics.read()).expect("utf8")).expect("valid report");
    let metric = |k: &str| {
        report
            .get("metrics")
            .and_then(|m| m.get(k))
            .and_then(Json::as_num)
    };
    // 20 dice x 5 swing points recorded by the observed sweep.
    assert_eq!(metric("counter.mc.trials"), Some(100.0));
    assert!(metric("immunity_ratio").is_some());
}
