//! End-to-end profiling contract: `--profile-out` writes a parsable
//! folded-stack profile without perturbing stdout, `srlr profile`
//! ranks it, and `srlr bench-diff` gates snapshots with the 0/1/2
//! exit-code contract the CI perf-regression job relies on.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// A scratch file that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("srlr-prof-test-{}-{name}", std::process::id()));
        Self(p)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is utf-8")
    }

    fn write(&self, contents: &str) {
        fs::write(&self.0, contents).expect("fixture written");
    }

    fn read_text(&self) -> String {
        String::from_utf8(fs::read(&self.0).expect("profile file written")).expect("utf8")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn run(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    srlr_cli::run(&argv).expect("command succeeds")
}

fn run_bin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_srlr"))
        .args(args)
        .output()
        .expect("spawn srlr binary")
}

#[test]
fn fig6_profile_out_writes_a_folded_profile_and_does_not_perturb_stdout() {
    let profile = Scratch::new("fig6.folded");
    let plain = run(&["fig6", "--runs", "20"]);
    let profiled = run(&["fig6", "--runs", "20", "--profile-out", profile.path()]);
    assert_eq!(plain, profiled, "profiling must never change the answer");

    let text = profile.read_text();
    let lines = srlr_prof::parse_folded(&text).expect("valid folded profile");
    assert!(!lines.is_empty());
    let paths: Vec<&str> = lines.iter().map(|l| l.path.as_str()).collect();
    assert!(paths.contains(&"mc.sweep"), "root frame present: {paths:?}");
    for frame in ["mc.batch", "elaborate", "certify", "kernel"] {
        assert!(
            paths.iter().any(|p| p.split(';').any(|f| f == frame)),
            "frame `{frame}` missing from {paths:?}"
        );
    }
    // Folded lines are sorted, `path value` with a non-negative value.
    let mut sorted = paths.clone();
    sorted.sort_unstable();
    assert_eq!(paths, sorted, "folded output is sorted by path");
}

#[test]
fn every_instrumented_subcommand_accepts_profile_out() {
    for (name, args) in [
        ("waveforms", vec!["waveforms"]),
        (
            "noc",
            vec!["noc", "--cols", "4", "--rows", "4", "--cycles", "400"],
        ),
        (
            "noc-faults",
            vec![
                "noc-faults",
                "--cols",
                "4",
                "--rows",
                "4",
                "--cycles",
                "400",
                "--bers",
                "0,1e-3",
            ],
        ),
        ("verify-noc", vec!["verify-noc", "--retries", "1"]),
    ] {
        let profile = Scratch::new(&format!("{name}.folded"));
        let mut argv = args.clone();
        argv.push("--profile-out");
        argv.push(profile.path());
        let _ = run(&argv);
        let lines = srlr_prof::parse_folded(&profile.read_text())
            .unwrap_or_else(|e| panic!("`{name}` wrote an invalid profile: {e}"));
        assert!(!lines.is_empty(), "`{name}` wrote an empty profile");
    }
}

#[test]
fn profile_subcommand_ranks_the_hotspots() {
    let profile = Scratch::new("rank.folded");
    let _ = run(&[
        "noc-faults",
        "--cols",
        "4",
        "--rows",
        "4",
        "--cycles",
        "400",
        "--bers",
        "0,1e-3",
        "--profile-out",
        profile.path(),
    ]);
    let table = run(&["profile", "--in", profile.path(), "--top", "3"]);
    assert!(table.contains("FRAME"), "table header: {table}");
    assert!(table.contains("noc."), "frames listed: {table}");
    assert!(
        table.lines().count() <= 3 + 3,
        "--top bounds the table: {table}"
    );
}

#[test]
fn profile_subcommand_rejects_bad_input() {
    let err = srlr_cli::run(&["profile".to_owned()]).unwrap_err();
    assert!(matches!(err, srlr_cli::CliError::Usage(_)));
    let garbage = Scratch::new("garbage.folded");
    garbage.write("no trailing value field here\n");
    let err = srlr_cli::run(&[
        "profile".to_owned(),
        "--in".to_owned(),
        garbage.path().to_owned(),
    ])
    .unwrap_err();
    assert!(matches!(err, srlr_cli::CliError::Experiment(_)));
}

#[test]
fn bench_diff_exit_codes_follow_the_gate_contract() {
    let old = Scratch::new("old.json");
    let new = Scratch::new("new.json");
    old.write("{\"metrics\": {\"immunity_ratio\": 3.7, \"errors\": 0}}");

    // Identical snapshots pass: exit 0.
    let out = run_bin(&["bench-diff", "--old", old.path(), "--new", old.path()]);
    assert_eq!(out.status.code(), Some(0), "identical snapshots gate clean");
    assert!(String::from_utf8_lossy(&out.stdout).contains("within tolerance"));

    // A seeded regression outside the band fails: exit 1.
    new.write("{\"metrics\": {\"immunity_ratio\": 2.9, \"errors\": 0}}");
    let out = run_bin(&[
        "bench-diff",
        "--old",
        old.path(),
        "--new",
        new.path(),
        "--tolerance",
        "0.05",
    ]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("REGRESSED"), "stderr: {stderr}");
    assert!(stderr.contains("immunity_ratio"), "stderr: {stderr}");

    // The same change inside a generous band passes: exit 0.
    let out = run_bin(&[
        "bench-diff",
        "--old",
        old.path(),
        "--new",
        new.path(),
        "--tolerance",
        "0.5",
    ]);
    assert_eq!(out.status.code(), Some(0), "banded drift passes");

    // ... as does exempting the key outright.
    let out = run_bin(&[
        "bench-diff",
        "--old",
        old.path(),
        "--new",
        new.path(),
        "--ignore",
        "immunity_ratio",
    ]);
    assert_eq!(out.status.code(), Some(0), "ignored keys never gate");

    // Usage errors exit 2; unreadable files are experiment errors (1).
    let out = run_bin(&["bench-diff", "--old", old.path()]);
    assert_eq!(out.status.code(), Some(2), "missing --new is a usage error");
    let out = run_bin(&[
        "bench-diff",
        "--old",
        old.path(),
        "--new",
        "/nonexistent.json",
    ]);
    assert_eq!(out.status.code(), Some(1), "unreadable input exits 1");
}

#[test]
fn bench_diff_gates_the_committed_snapshots_against_themselves() {
    // The CI job's sanity leg: every committed snapshot must diff clean
    // against itself (schema parses, nothing regresses).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for name in [
        "BENCH_mc_throughput.json",
        "BENCH_noc_faults.json",
        "BENCH_model_check.json",
    ] {
        let snap = root.join(name);
        let path = snap.to_str().expect("utf-8 path");
        if !snap.exists() {
            panic!("committed snapshot `{name}` is missing");
        }
        let out = run_bin(&["bench-diff", "--old", path, "--new", path]);
        assert_eq!(out.status.code(), Some(0), "`{name}` must self-diff clean");
    }
}

#[test]
fn committed_hotpath_roots_name_real_profiler_spans() {
    // `lint-hotpaths.txt` drives the lint's alloc-in-hot-path rule; its
    // span column must stay in sync with the spans the profiler
    // actually emits, or the declared roots silently stop describing
    // the measured hot path.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = fs::read_to_string(root.join(srlr_lint::semantic::HOTPATHS_FILE))
        .expect("committed lint-hotpaths.txt");
    let hot = srlr_lint::semantic::parse_hotpaths(&text);
    assert!(hot.malformed.is_empty(), "{:?}", hot.malformed);
    assert!(!hot.roots.is_empty(), "at least one declared hot root");

    let profile = Scratch::new("hotroots.folded");
    let _ = run(&["fig6", "--runs", "20", "--profile-out", profile.path()]);
    let lines = srlr_prof::parse_folded(&profile.read_text()).expect("valid folded profile");
    let paths: Vec<&str> = lines.iter().map(|l| l.path.as_str()).collect();
    for root in &hot.roots {
        assert!(
            paths.iter().any(|p| p.split(';').any(|f| f == root.span)),
            "hot root span `{}` (line {}) is not a profiler frame in {paths:?}",
            root.span,
            root.line,
        );
    }
}
