//! Binary-level tests for `srlr lint`: the exit-code contract (`0`
//! clean, `1` violations, `2` usage errors) and the SARIF emitter, as a
//! CI runner would observe them.

use std::path::Path;
use std::process::{Command, Output};

use srlr_telemetry::json::{parse, Json};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn srlr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srlr"))
        .args(args)
        .output()
        .expect("spawn srlr")
}

#[test]
fn lint_deny_all_is_clean_on_this_workspace() {
    let root = workspace_root();
    let out = srlr(&[
        "lint",
        "--root",
        root.to_str().expect("utf-8"),
        "--deny-all",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn lint_format_sarif_emits_valid_sarif() {
    let root = workspace_root();
    let out = srlr(&[
        "lint",
        "--root",
        root.to_str().expect("utf-8"),
        "--format",
        "sarif",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let doc = parse(&stdout).expect("stdout must be one valid JSON document");
    let Json::Obj(top) = &doc else {
        panic!("SARIF root must be an object")
    };
    assert_eq!(top.get("version"), Some(&Json::Str("2.1.0".into())));
    assert!(top.contains_key("runs"));
}

#[test]
fn lint_unknown_flag_is_a_usage_error() {
    let out = srlr(&["lint", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("frobnicate"), "{stderr}");
}

#[test]
fn lint_bad_format_is_a_usage_error() {
    let out = srlr(&["lint", "--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_violations_exit_one() {
    // A seeded one-file workspace with a layering violation: the
    // subcommand must exit 1, not 0 or 2.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_cli_dirty");
    let src_dir = root.join("crates/tech/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture");
    std::fs::write(src_dir.join("lib.rs"), "use srlr_noc::Network;\n").expect("write fixture");
    let out = srlr(&["lint", "--root", root.to_str().expect("utf-8")]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("crate-layering"), "{stderr}");
}

#[test]
fn lint_format_sarif_exits_zero_even_with_findings() {
    // Matching `verify-noc --format sarif`: the document carries the
    // findings, so CI must receive it (exit 0) even when they gate.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_cli_sarif_dirty");
    let src_dir = root.join("crates/tech/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture");
    std::fs::write(src_dir.join("lib.rs"), "use srlr_noc::Network;\n").expect("write fixture");

    let out = srlr(&[
        "lint",
        "--root",
        root.to_str().expect("utf-8"),
        "--format",
        "sarif",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let doc = parse(&stdout).expect("stdout must be one valid JSON document");
    let Json::Obj(top) = &doc else {
        panic!("SARIF root must be an object")
    };
    let Some(Json::Arr(runs)) = top.get("runs") else {
        panic!("runs array present")
    };
    let Json::Obj(run) = &runs[0] else { panic!() };
    let Some(Json::Arr(results)) = run.get("results") else {
        panic!("results array present")
    };
    assert!(
        !results.is_empty(),
        "the finding must appear in the document: {stdout}"
    );

    // The same workspace under the text format still gates (exit 1).
    let out = srlr(&["lint", "--root", root.to_str().expect("utf-8")]);
    assert_eq!(out.status.code(), Some(1));
}
