//! Shell-level contract of `srlr verify-noc`: the model-check gate
//! exits 0 when all proofs hold and 1 with counterexample traces when
//! they do not, and the SARIF export is a valid document that carries
//! the broken-variant counterexamples (the ISSUE 8 seeded fixture).

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_srlr"))
        .args(args)
        .output()
        .expect("spawn srlr binary")
}

#[test]
fn correct_variant_proves_the_issue_budgets_and_exits_0() {
    let out = run(&["verify-noc", "--retries", "0,1,3"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all proofs hold"), "stdout: {stdout}");
    assert!(stdout.contains("12 ordered routes"), "stdout: {stdout}");
    // One row per requested budget.
    for budget in ["0", "1", "3"] {
        assert!(stdout.lines().any(|l| l.trim_start().starts_with(budget)));
    }
}

#[test]
fn broken_variant_exits_1_with_a_counterexample_trace() {
    let out = run(&["verify-noc", "--variant", "no-watermark", "--retries", "3"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("counterexample"), "stderr: {stderr}");
    assert!(
        stderr.contains("no-overtaking violated"),
        "stderr: {stderr}"
    );
    // The trace shows the offending crossing: an arrival at or below
    // the link watermark.
    assert!(stderr.contains("watermark"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn sarif_export_always_exits_0_and_carries_the_violations() {
    let out = run(&[
        "verify-noc",
        "--variant",
        "no-watermark",
        "--retries",
        "3",
        "--format",
        "sarif",
    ]);
    assert_eq!(out.status.code(), Some(0), "sarif export must not gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\":\"2.1.0\""), "stdout: {stdout}");
    assert!(stdout.contains("\"name\":\"srlr-model\""));
    assert!(stdout.contains("\"ruleId\":\"no-overtaking\""));
    assert!(stdout.contains("model://2x2/budget-3/route/"));
    // The message embeds the replayable trace.
    assert!(stdout.contains("attempts"));
}

#[test]
fn clean_sarif_export_declares_all_rules_with_no_results() {
    let out = run(&["verify-noc", "--retries", "1", "--format", "sarif"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"results\":[]"), "stdout: {stdout}");
    for rule in ["no-overtaking", "deadlock", "termination"] {
        assert!(stdout.contains(rule), "missing rule {rule}");
    }
}

#[test]
fn json_format_reports_the_exact_probability_and_closed_form() {
    let out = run(&["verify-noc", "--retries", "0,1", "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = srlr_telemetry::json::parse(&stdout).expect("valid JSON");
    let budgets = doc
        .get("budgets")
        .and_then(|b| b.as_arr())
        .expect("budgets array");
    assert_eq!(budgets.len(), 2);
    for budget in budgets {
        let exact = budget
            .get("deliver_probability")
            .and_then(|v| v.as_num())
            .expect("probability");
        let closed = budget
            .get("closed_form")
            .and_then(|v| v.as_num())
            .expect("closed form");
        assert!((exact - closed).abs() < 1e-12);
        assert_eq!(
            budget.get("deadlock_free"),
            Some(&srlr_telemetry::json::Json::Bool(true))
        );
    }
}

#[test]
fn counterexamples_stream_through_telemetry_events() {
    let dir = std::env::temp_dir().join("srlr-verify-noc-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let events = dir.join("events.jsonl");
    let out = run(&[
        "verify-noc",
        "--variant",
        "no-watermark",
        "--retries",
        "2",
        "--events-out",
        events.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stream = std::fs::read_to_string(&events).expect("events file written");
    assert!(stream.contains("model.violation"), "stream: {stream}");
    assert!(stream.contains("model.crossing"));
    assert!(stream.contains("busy_before"));
    std::fs::remove_file(&events).ok();
}

#[test]
fn bad_flags_exit_2() {
    for args in [
        &["verify-noc", "--retries", "0,soup"][..],
        &["verify-noc", "--variant", "chaotic"][..],
        &["verify-noc", "--format", "xml"][..],
        &["verify-noc", "--packet-len", "99"][..],
        &["verify-noc", "--ber", "1.5"][..],
        &["verify-noc", "--cols", "9"][..],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    }
}
