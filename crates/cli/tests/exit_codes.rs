//! Shell-level contract of the `srlr` binary: usage errors (unknown
//! commands, malformed flags) exit with code 2, never a panic, so
//! scripts can distinguish "you called me wrong" from "the experiment
//! failed".

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_srlr"))
        .args(args)
        .output()
        .expect("spawn srlr binary")
}

#[test]
fn unknown_command_exits_2() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage error"), "stderr: {stderr}");
}

#[test]
fn malformed_bers_list_exits_2_without_panic() {
    let out = run(&["noc-faults", "--bers", "0,soup,1e-3"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bers"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn malformed_swings_list_exits_2_without_panic() {
    let out = run(&["noc-faults", "--swings", "80;90"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--swings"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn malformed_threads_exits_2_without_panic() {
    let out = run(&["shmoo", "--threads", "-3"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn conflicting_flags_exit_2() {
    let out = run(&["noc-faults", "--bers", "1e-5", "--swings", "80"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_succeeds() {
    let out = run(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("noc-faults"), "stdout: {stdout}");
}
