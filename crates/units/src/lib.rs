//! Physical-quantity newtypes for the SRLR reproduction.
//!
//! Circuit and network-on-chip modeling mixes many scales — femtojoules,
//! kilohms, gigabits per second, micrometres — and silent unit confusion is
//! the classic source of wrong energy numbers. This crate gives every
//! quantity used by the higher-level crates its own newtype over `f64`
//! ([C-NEWTYPE]), with:
//!
//! * checked, dimension-respecting arithmetic (`Voltage * Charge = Energy`,
//!   `Resistance * Capacitance = TimeInterval`, ...),
//! * named constructors and accessors at the scales the paper uses
//!   (`Voltage::from_millivolts`, `Energy::femtojoules`, ...),
//! * human-readable SI display (`40.4 fJ`, `6.83 Gb/s/um`).
//!
//! # Examples
//!
//! ```
//! use srlr_units::{Capacitance, Voltage};
//!
//! // Dynamic energy of charging 200 fF of wire to a 0.35 V swing, with the
//! // charge drawn from the 0.8 V rail: E = (C * V_swing) * V_dd.
//! let wire = Capacitance::from_femtofarads(200.0);
//! let swing = Voltage::from_millivolts(350.0);
//! let rail = Voltage::from_volts(0.8);
//! let charge = wire * swing;
//! let energy = charge * rail;
//! assert!((energy.femtojoules() - 56.0).abs() < 1e-9);
//! ```
//!
//! The umbrella quantity list lives in the individual modules:
//! [`electrical`], [`time`], [`energy`], [`geometry`], [`rate`] and
//! [`density`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

/// Per-length and per-area extraction densities.
pub mod density;
/// Voltage, current, charge, resistance and capacitance quantities.
pub mod electrical;
/// Energy and power quantities.
pub mod energy;
/// Length and area quantities.
pub mod geometry;
/// Data-rate and energy-efficiency figures of merit.
pub mod rate;
/// SI prefix scaling for human-readable formatting.
pub mod si;
/// Time and frequency quantities.
pub mod time;

pub use density::{
    CapacitancePerArea, CapacitancePerLength, CurrentPerLength, DelayPerLength, ResistancePerLength,
};
pub use electrical::{Capacitance, Charge, Current, Resistance, Voltage};
pub use energy::{Energy, Power};
pub use geometry::{Area, Length};
pub use rate::{BandwidthDensity, DataRate, EnergyPerBit, EnergyPerBitLength};
pub use time::{Frequency, TimeInterval};

#[cfg(test)]
mod cross_ops_tests {
    use super::*;

    #[test]
    fn rc_time_constant() {
        let r = Resistance::from_kilohms(1.4);
        let c = Capacitance::from_femtofarads(200.0);
        let tau = r * c;
        assert!((tau.picoseconds() - 280.0).abs() < 1e-9);
    }

    #[test]
    fn ohms_law_round_trip() {
        let v = Voltage::from_volts(0.8);
        let r = Resistance::from_ohms(400.0);
        let i = v / r;
        assert!((i.milliamperes() - 2.0).abs() < 1e-12);
        let back = i * r;
        assert!((back.volts() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn power_energy_time_triangle() {
        let p = Power::from_milliwatts(1.66);
        let t = TimeInterval::from_nanoseconds(1.0);
        let e = p * t;
        assert!((e.femtojoules() - 1660.0).abs() < 1e-6);
        assert!(((e / t).milliwatts() - 1.66).abs() < 1e-12);
        assert!(((e / p).nanoseconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_definitions_agree() {
        let c = Capacitance::from_femtofarads(100.0);
        let v = Voltage::from_volts(0.5);
        let q1 = c * v;
        let q2 = Current::from_microamperes(50.0) * TimeInterval::from_nanoseconds(1.0);
        assert!((q1.coulombs() - 50e-15).abs() < 1e-20);
        assert!((q2.coulombs() - 50e-15).abs() < 1e-20);
    }

    #[test]
    fn energy_from_charge_and_voltage() {
        let q = Capacitance::from_femtofarads(200.0) * Voltage::from_millivolts(350.0);
        let e = q * Voltage::from_volts(0.8);
        assert!((e.femtojoules() - 56.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Frequency::from_gigahertz(4.1);
        let t = f.period();
        assert!((t.picoseconds() - 243.902439).abs() < 1e-3);
        assert!((t.frequency().gigahertz() - 4.1).abs() < 1e-9);
    }

    #[test]
    fn data_rate_geometry() {
        // The paper's headline: 4.1 Gb/s over a 0.6 um pitch wire.
        let rate = DataRate::from_gigabits_per_second(4.1);
        let pitch = Length::from_micrometers(0.6);
        let density = rate / pitch;
        assert!((density.gigabits_per_second_per_micrometer() - 6.8333).abs() < 1e-3);
    }

    #[test]
    fn energy_per_bit_per_length() {
        // 1.66 mW at 4.1 Gb/s over 10 mm -> 40.4 fJ/bit/mm.
        let p = Power::from_milliwatts(1.66);
        let rate = DataRate::from_gigabits_per_second(4.1);
        let per_bit = p / rate;
        let per_mm = per_bit / Length::from_millimeters(10.0);
        assert!((per_mm.femtojoules_per_bit_per_millimeter() - 40.4878).abs() < 1e-3);
    }
}
