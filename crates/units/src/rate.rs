//! Data rates, bandwidth densities and per-bit energy metrics.
//!
//! These are the axes of the paper's Fig. 8 and the columns of Table I:
//! data rate (Gb/s), bandwidth density (Gb/s per um of wire pitch), and
//! link-traversal energy normalised per bit and per unit length (fJ/bit/mm,
//! or fJ/bit/cm as the table prints it).

use crate::energy::{Energy, Power};
use crate::geometry::Length;
use crate::time::TimeInterval;

quantity! {
    /// Data rate in bits per second.
    ///
    /// ```
    /// use srlr_units::DataRate;
    /// let rate = DataRate::from_gigabits_per_second(4.1);
    /// assert_eq!(format!("{rate}"), "4.1 Gb/s");
    /// ```
    DataRate, base = "b/s"
}

quantity_scales!(DataRate {
    /// Bits per second.
    from_bits_per_second / bits_per_second = 1.0,
    /// Megabits per second.
    from_megabits_per_second / megabits_per_second = 1e6,
    /// Gigabits per second.
    from_gigabits_per_second / gigabits_per_second = 1e9,
});

quantity! {
    /// Bandwidth density in bits per second per metre of wire pitch.
    ///
    /// The paper normalises link bandwidth by the wire pitch (width +
    /// space); its headline is 6.83 Gb/s/um.
    ///
    /// ```
    /// use srlr_units::BandwidthDensity;
    /// let d = BandwidthDensity::from_gigabits_per_second_per_micrometer(6.83);
    /// assert!((d.gigabits_per_second_per_micrometer() - 6.83).abs() < 1e-9);
    /// ```
    BandwidthDensity, base = "b/s/m"
}

quantity_scales!(BandwidthDensity {
    /// Bits per second per metre.
    from_bits_per_second_per_meter / bits_per_second_per_meter = 1.0,
    /// Gigabits per second per micrometre (the paper's unit).
    from_gigabits_per_second_per_micrometer / gigabits_per_second_per_micrometer = 1e15,
});

quantity! {
    /// Energy per transmitted bit in joules per bit.
    ///
    /// ```
    /// use srlr_units::EnergyPerBit;
    /// let e = EnergyPerBit::from_femtojoules_per_bit(404.0);
    /// assert!((e.femtojoules_per_bit() - 404.0).abs() < 1e-9);
    /// ```
    EnergyPerBit, base = "J/b"
}

quantity_scales!(EnergyPerBit {
    /// Joules per bit.
    from_joules_per_bit / joules_per_bit = 1.0,
    /// Picojoules per bit.
    from_picojoules_per_bit / picojoules_per_bit = 1e-12,
    /// Femtojoules per bit.
    from_femtojoules_per_bit / femtojoules_per_bit = 1e-15,
});

quantity! {
    /// Energy per bit per unit wire length, in joules per bit per metre.
    ///
    /// The paper's headline metric: 40.4 fJ/bit/mm (equivalently
    /// 404 fJ/bit/cm as Table I prints it).
    ///
    /// ```
    /// use srlr_units::EnergyPerBitLength;
    /// let e = EnergyPerBitLength::from_femtojoules_per_bit_per_millimeter(40.4);
    /// assert!((e.femtojoules_per_bit_per_centimeter() - 404.0).abs() < 1e-9);
    /// ```
    EnergyPerBitLength, base = "J/b/m"
}

quantity_scales!(EnergyPerBitLength {
    /// Joules per bit per metre.
    from_joules_per_bit_per_meter / joules_per_bit_per_meter = 1.0,
    /// Femtojoules per bit per millimetre.
    from_femtojoules_per_bit_per_millimeter / femtojoules_per_bit_per_millimeter = 1e-12,
    /// Femtojoules per bit per centimetre (Table I's unit).
    from_femtojoules_per_bit_per_centimeter / femtojoules_per_bit_per_centimeter = 1e-13,
});

// P = E/bit * rate; rate = density * pitch; E/bit = E/bit/len * len.
quantity_product!(EnergyPerBit, DataRate => Power);
quantity_product!(BandwidthDensity, Length => DataRate);
quantity_product!(EnergyPerBitLength, Length => EnergyPerBit);

impl DataRate {
    /// The unit interval (bit period) of this data rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero or negative.
    #[inline]
    pub fn bit_period(self) -> TimeInterval {
        assert!(self.value() > 0.0, "bit period of a non-positive data rate");
        TimeInterval::new(1.0 / self.value())
    }

    /// Number of bits transferred in `window`.
    #[inline]
    pub fn bits_in(self, window: TimeInterval) -> f64 {
        self.value() * window.value()
    }
}

impl EnergyPerBit {
    /// Total energy for `bits` transmitted bits.
    #[inline]
    pub fn total(self, bits: f64) -> Energy {
        Energy::new(self.value() * bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_round_trip() {
        // 404 fJ/bit/cm over 10 mm at 4.1 Gb/s -> 1.66 mW.
        let e = EnergyPerBitLength::from_femtojoules_per_bit_per_centimeter(404.0);
        let per_bit = e * Length::from_millimeters(10.0);
        let p = per_bit * DataRate::from_gigabits_per_second(4.1);
        assert!((p.milliwatts() - 1.6564).abs() < 1e-3);
    }

    #[test]
    fn bandwidth_density_from_rate_and_pitch() {
        let rate = DataRate::from_gigabits_per_second(4.1);
        let pitch = Length::from_micrometers(0.6);
        let d = rate / pitch;
        assert!((d.gigabits_per_second_per_micrometer() - 6.8333).abs() < 1e-3);
        // And back again.
        let back = d * pitch;
        assert!((back.gigabits_per_second() - 4.1).abs() < 1e-9);
    }

    #[test]
    fn bit_period_of_max_rate() {
        let t = DataRate::from_gigabits_per_second(4.1).bit_period();
        assert!((t.picoseconds() - 243.902).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "non-positive data rate")]
    fn bit_period_rejects_zero() {
        let _ = DataRate::zero().bit_period();
    }

    #[test]
    fn bits_in_window() {
        let rate = DataRate::from_gigabits_per_second(2.0);
        let n = rate.bits_in(TimeInterval::from_microseconds(1.0));
        assert!((n - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn per_bit_total_energy() {
        let e = EnergyPerBit::from_femtojoules_per_bit(404.0);
        let total = e.total(1e9);
        assert!((total.microjoules() - 404.0).abs() < 1e-9);
    }

    #[test]
    fn fj_per_mm_and_per_cm_scales_agree() {
        let a = EnergyPerBitLength::from_femtojoules_per_bit_per_millimeter(40.4);
        let b = EnergyPerBitLength::from_femtojoules_per_bit_per_centimeter(404.0);
        assert!((a.value() - b.value()).abs() < 1e-18);
    }
}
