//! Time intervals and frequencies.

quantity! {
    /// A span of time in seconds.
    ///
    /// Pulse widths, delays and bit periods in this reproduction are tens to
    /// hundreds of picoseconds.
    ///
    /// ```
    /// use srlr_units::TimeInterval;
    /// let ui = TimeInterval::from_picoseconds(243.9);
    /// assert_eq!(format!("{ui:.1}"), "243.9 ps");
    /// ```
    TimeInterval, base = "s"
}

quantity_scales!(TimeInterval {
    /// Seconds.
    from_seconds / seconds = 1.0,
    /// Milliseconds.
    from_milliseconds / milliseconds = 1e-3,
    /// Microseconds.
    from_microseconds / microseconds = 1e-6,
    /// Nanoseconds.
    from_nanoseconds / nanoseconds = 1e-9,
    /// Picoseconds.
    from_picoseconds / picoseconds = 1e-12,
    /// Femtoseconds.
    from_femtoseconds / femtoseconds = 1e-15,
});

quantity! {
    /// Frequency in hertz.
    ///
    /// ```
    /// use srlr_units::Frequency;
    /// let clk = Frequency::from_gigahertz(1.0);
    /// assert!((clk.period().nanoseconds() - 1.0).abs() < 1e-12);
    /// ```
    Frequency, base = "Hz"
}

quantity_scales!(Frequency {
    /// Hertz.
    from_hertz / hertz = 1.0,
    /// Kilohertz.
    from_kilohertz / kilohertz = 1e3,
    /// Megahertz.
    from_megahertz / megahertz = 1e6,
    /// Gigahertz.
    from_gigahertz / gigahertz = 1e9,
});

impl Frequency {
    /// The period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[inline]
    pub fn period(self) -> TimeInterval {
        assert!(self.value() > 0.0, "period of a non-positive frequency");
        TimeInterval::new(1.0 / self.value())
    }
}

impl TimeInterval {
    /// The frequency `1/t`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero or negative.
    #[inline]
    pub fn frequency(self) -> Frequency {
        assert!(self.value() > 0.0, "frequency of a non-positive interval");
        Frequency::new(1.0 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_round_trips() {
        let t = TimeInterval::from_picoseconds(280.0);
        assert!((t.nanoseconds() - 0.28).abs() < 1e-12);
        assert!((t.seconds() - 280e-12).abs() < 1e-24);
    }

    #[test]
    fn period_frequency_inverse_pair() {
        let f = Frequency::from_megahertz(500.0);
        assert!((f.period().nanoseconds() - 2.0).abs() < 1e-12);
        let t = TimeInterval::from_nanoseconds(2.0);
        assert!((t.frequency().megahertz() - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-positive frequency")]
    fn zero_frequency_has_no_period() {
        let _ = Frequency::zero().period();
    }

    #[test]
    #[should_panic(expected = "non-positive interval")]
    fn zero_interval_has_no_frequency() {
        let _ = TimeInterval::zero().frequency();
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(format!("{}", TimeInterval::from_picoseconds(75.0)), "75 ps");
        assert_eq!(format!("{}", Frequency::from_gigahertz(4.1)), "4.1 GHz");
    }
}
