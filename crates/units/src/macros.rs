//! The `quantity!` macro that defines every newtype in this crate.

/// Defines a physical-quantity newtype over `f64`.
///
/// The generated type carries:
///
/// * `new(f64)`, `value()` (raw base-unit access), `zero()`,
/// * `Add`, `Sub`, `Neg`, `Mul<f64>`, `Div<f64>`, `f64 * Self`,
///   `Self / Self -> f64` (dimensionless ratio),
/// * `AddAssign`, `SubAssign`,
/// * `abs`, `min`, `max`, `clamp`, `is_finite`, `signum`,
/// * `Display` using an SI-prefixed rendering of the base unit,
/// * `Default` (zero), full `PartialOrd` ordering helpers.
///
/// Quantities are plain-old-data: `Copy`, `Clone`, `PartialEq`, `PartialOrd`,
/// `Debug`. `Eq`/`Ord`/`Hash` are deliberately absent because the payload is
/// a float.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, base = $base_unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Creates a quantity from a raw value in the base unit
            /// (`
            #[doc = $base_unit]
            /// `).
            #[inline]
            pub const fn new(base_value: f64) -> Self {
                Self(base_value)
            }

            /// The zero quantity.
            #[inline]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Raw value in the base unit (`
            #[doc = $base_unit]
            /// `).
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Smaller of the two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Larger of the two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp: lo must not exceed hi");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the payload is neither NaN nor infinite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Sign of the quantity (−1.0, 0.0 or 1.0 following `f64::signum`).
            #[inline]
            pub fn signum(self) -> f64 {
                self.0.signum()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                $crate::si::write_si(f, self.0, $base_unit)
            }
        }
    };
}

/// Implements a product relation `Lhs * Rhs = Out` (and the commuted form).
macro_rules! quantity_product {
    ($lhs:ty, $rhs:ty => $out:ty) => {
        impl core::ops::Mul<$rhs> for $lhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $rhs) -> $out {
                <$out>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Mul<$lhs> for $rhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $lhs) -> $out {
                <$out>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Div<$rhs> for $out {
            type Output = $lhs;
            #[inline]
            fn div(self, rhs: $rhs) -> $lhs {
                <$lhs>::new(self.value() / rhs.value())
            }
        }

        impl core::ops::Div<$lhs> for $out {
            type Output = $rhs;
            #[inline]
            fn div(self, rhs: $lhs) -> $rhs {
                <$rhs>::new(self.value() / rhs.value())
            }
        }
    };
}

/// Implements a squared relation `T * T = Out` plus `Out / T = T`.
macro_rules! quantity_square {
    ($t:ty => $out:ty) => {
        impl core::ops::Mul for $t {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: Self) -> $out {
                <$out>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Div<$t> for $out {
            type Output = $t;
            #[inline]
            fn div(self, rhs: $t) -> $t {
                <$t>::new(self.value() / rhs.value())
            }
        }
    };
}

/// Generates `from_<unit>` constructors and `<unit>` accessors at a scale.
macro_rules! quantity_scales {
    ($t:ty { $( $(#[$meta:meta])* $ctor:ident / $get:ident = $scale:expr ),+ $(,)? }) => {
        impl $t {
            $(
                $(#[$meta])*
                #[inline]
                pub fn $ctor(v: f64) -> Self {
                    Self::new(v * $scale)
                }

                $(#[$meta])*
                #[inline]
                pub fn $get(self) -> f64 {
                    self.value() / $scale
                }
            )+
        }
    };
}
