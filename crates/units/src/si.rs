//! SI-prefixed rendering shared by every quantity's `Display` impl.

use core::fmt;

/// SI prefixes from yocto to yotta, as `(exponent, symbol)` pairs.
const PREFIXES: &[(i32, &str)] = &[
    (-24, "y"),
    (-21, "z"),
    (-18, "a"),
    (-15, "f"),
    (-12, "p"),
    (-9, "n"),
    (-6, "u"),
    (-3, "m"),
    (0, ""),
    (3, "k"),
    (6, "M"),
    (9, "G"),
    (12, "T"),
    (15, "P"),
    (18, "E"),
    (21, "Z"),
    (24, "Y"),
];

/// Picks the SI prefix that renders `value` in `[1, 1000)` and returns the
/// scaled mantissa with the prefix symbol.
///
/// Zero, NaN and infinities map to the unscaled representation.
///
/// # Examples
///
/// ```
/// let (mantissa, prefix) = srlr_units::si::si_scale(40.4e-15);
/// assert!((mantissa - 40.4).abs() < 1e-9);
/// assert_eq!(prefix, "f");
/// assert_eq!(srlr_units::si::si_scale(0.0), (0.0, ""));
/// ```
pub fn si_scale(value: f64) -> (f64, &'static str) {
    // srlr-lint: allow(float-eq, reason = "exact-zero sentinel: log10 of zero is undefined, documented to map to the unscaled form")
    if value == 0.0 || !value.is_finite() {
        return (value, "");
    }
    let magnitude = value.abs().log10();
    // Group of three decades, clamped to the supported prefix range.
    // srlr-lint: allow(lossy-cast, reason = "f64->i32 decade exponent of a finite value; clamped to [-24, 24] on the next line")
    let exponent = ((magnitude / 3.0).floor() * 3.0) as i32;
    let exponent = exponent.clamp(-24, 24);
    let (exp, symbol) = PREFIXES
        .iter()
        .copied()
        .find(|&(e, _)| e == exponent)
        .unwrap_or((0, ""));
    (value / 10f64.powi(exp), symbol)
}

/// Writes `value` with an SI prefix and the given base-unit suffix.
///
/// Respects the formatter's precision if one was supplied; defaults to four
/// significant-ish digits (three decimal places after scaling).
pub fn write_si(f: &mut fmt::Formatter<'_>, value: f64, unit: &str) -> fmt::Result {
    let (scaled, prefix) = si_scale(value);
    match f.precision() {
        Some(p) => write!(f, "{scaled:.p$} {prefix}{unit}"),
        None => {
            // Trim trailing zeros for a compact default rendering.
            let text = format!("{scaled:.3}");
            let text = text.trim_end_matches('0').trim_end_matches('.');
            write!(f, "{text} {prefix}{unit}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_femto_for_femtojoule_scale() {
        let (v, p) = si_scale(40.4e-15);
        assert!((v - 40.4).abs() < 1e-9);
        assert_eq!(p, "f");
    }

    #[test]
    fn picks_giga_for_data_rates() {
        let (v, p) = si_scale(4.1e9);
        assert!((v - 4.1).abs() < 1e-9);
        assert_eq!(p, "G");
    }

    #[test]
    fn exact_thousand_boundaries() {
        assert_eq!(si_scale(1.0), (1.0, ""));
        assert_eq!(si_scale(1000.0), (1.0, "k"));
        let (v, p) = si_scale(999.0);
        assert!((v - 999.0).abs() < 1e-9);
        assert_eq!(p, "");
    }

    #[test]
    fn negative_values_keep_sign() {
        let (v, p) = si_scale(-2.5e-3);
        assert!((v + 2.5).abs() < 1e-9);
        assert_eq!(p, "m");
    }

    #[test]
    fn out_of_range_clamps_to_extreme_prefix() {
        let (v, p) = si_scale(1e30);
        assert_eq!(p, "Y");
        assert!((v - 1e6).abs() < 1.0);
    }

    #[test]
    fn zero_and_non_finite_pass_through() {
        assert_eq!(si_scale(0.0), (0.0, ""));
        let (v, p) = si_scale(f64::INFINITY);
        assert!(v.is_infinite());
        assert_eq!(p, "");
        let (v, _) = si_scale(f64::NAN);
        assert!(v.is_nan());
    }
}
