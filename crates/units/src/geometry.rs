//! Lengths and areas for wire geometry and floorplan accounting.

quantity! {
    /// Length in metres.
    ///
    /// Wire spans in the paper are 1 mm per repeater segment; widths and
    /// spacings are fractions of a micrometre.
    ///
    /// ```
    /// use srlr_units::Length;
    /// let seg = Length::from_millimeters(1.0);
    /// assert_eq!(format!("{seg}"), "1 mm");
    /// ```
    Length, base = "m"
}

quantity_scales!(Length {
    /// Metres.
    from_meters / meters = 1.0,
    /// Millimetres.
    from_millimeters / millimeters = 1e-3,
    /// Micrometres.
    from_micrometers / micrometers = 1e-6,
    /// Nanometres.
    from_nanometers / nanometers = 1e-9,
});

quantity! {
    /// Area in square metres.
    ///
    /// A single SRLR occupies 47.9 um^2 of active silicon; routers are
    /// fractions of a square millimetre.
    ///
    /// ```
    /// use srlr_units::Area;
    /// let srlr = Area::from_square_micrometers(47.9);
    /// assert!((srlr.square_micrometers() - 47.9).abs() < 1e-9);
    /// ```
    Area, base = "m^2"
}

quantity_scales!(Area {
    /// Square metres.
    from_square_meters / square_meters = 1.0,
    /// Square millimetres.
    from_square_millimeters / square_millimeters = 1e-6,
    /// Square micrometres.
    from_square_micrometers / square_micrometers = 1e-12,
});

quantity_square!(Length => Area); // A = l * w

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srlr_footprint_from_dimensions() {
        // 10.2 um x 4.7 um = 47.94 um^2 (the paper rounds to 47.9).
        let a = Length::from_micrometers(10.2) * Length::from_micrometers(4.7);
        assert!((a.square_micrometers() - 47.94).abs() < 1e-9);
    }

    #[test]
    fn datapath_area_matches_paper_arithmetic() {
        // 47.9 um^2 x 64 bits x 5 ports x 4 SRLRs = 0.0613 mm^2.
        let one = Area::from_square_micrometers(47.9);
        let total = one * 64.0 * 5.0 * 4.0;
        assert!((total.square_millimeters() - 0.061312).abs() < 1e-6);
    }

    #[test]
    fn area_divided_by_length() {
        let a = Area::from_square_micrometers(50.0);
        let l = Length::from_micrometers(10.0);
        assert!(((a / l).micrometers() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scale_round_trips() {
        let l = Length::from_micrometers(600.0);
        assert!((l.millimeters() - 0.6).abs() < 1e-12);
        assert!((l.nanometers() - 6e5).abs() < 1e-6);
    }
}
