//! Per-length and per-area extraction densities.
//!
//! Parasitic extraction works in densities: a wire geometry yields Ohm/m
//! and F/m, a MOSFET model yields F/m^2 of gate oxide and A/m of leakage
//! per device width. Multiplying by a [`Length`] (or [`Area`]) recovers
//! the lumped quantity, so `tech`-layer APIs can hand out densities
//! without ever exposing a bare `f64`.

use crate::electrical::{Capacitance, Current, Resistance};
use crate::geometry::{Area, Length};
use crate::time::TimeInterval;

quantity! {
    /// Wire resistance per unit length in ohms per metre.
    ///
    /// ```
    /// use srlr_units::{Length, ResistancePerLength};
    /// let r = ResistancePerLength::from_ohms_per_millimeter(138.9);
    /// let lumped = r * Length::from_millimeters(1.0);
    /// assert!((lumped.ohms() - 138.9).abs() < 1e-9);
    /// ```
    ResistancePerLength, base = "Ohm/m"
}

quantity_scales!(ResistancePerLength {
    /// Ohms per metre.
    from_ohms_per_meter / ohms_per_meter = 1.0,
    /// Ohms per millimetre.
    from_ohms_per_millimeter / ohms_per_millimeter = 1e3,
    /// Ohms per micrometre.
    from_ohms_per_micrometer / ohms_per_micrometer = 1e6,
});

quantity! {
    /// Wire or junction capacitance per unit length in farads per metre.
    ///
    /// ```
    /// use srlr_units::{CapacitancePerLength, Length};
    /// let c = CapacitancePerLength::from_femtofarads_per_micrometer(0.2);
    /// let lumped = c * Length::from_millimeters(1.0);
    /// assert!((lumped.femtofarads() - 200.0).abs() < 1e-9);
    /// ```
    CapacitancePerLength, base = "F/m"
}

quantity_scales!(CapacitancePerLength {
    /// Farads per metre.
    from_farads_per_meter / farads_per_meter = 1.0,
    /// Picofarads per millimetre.
    from_picofarads_per_millimeter / picofarads_per_millimeter = 1e-9,
    /// Femtofarads per micrometre.
    from_femtofarads_per_micrometer / femtofarads_per_micrometer = 1e-9,
    /// Nanofarads per metre.
    from_nanofarads_per_meter / nanofarads_per_meter = 1e-9,
});

quantity! {
    /// Areal capacitance in farads per square metre (gate-oxide Cox).
    ///
    /// ```
    /// use srlr_units::{Area, CapacitancePerArea};
    /// let cox = CapacitancePerArea::from_farads_per_square_meter(1.5e-2);
    /// let gate = cox * Area::from_square_micrometers(0.045);
    /// assert!((gate.femtofarads() - 0.675).abs() < 1e-9);
    /// ```
    CapacitancePerArea, base = "F/m^2"
}

quantity_scales!(CapacitancePerArea {
    /// Farads per square metre.
    from_farads_per_square_meter / farads_per_square_meter = 1.0,
    /// Femtofarads per square micrometre.
    from_femtofarads_per_square_micrometer / femtofarads_per_square_micrometer = 1e-3,
});

quantity! {
    /// Current per unit device width in amperes per metre (leakage
    /// densities scale with transistor width).
    ///
    /// ```
    /// use srlr_units::{CurrentPerLength, Length};
    /// let leak = CurrentPerLength::from_nanoamperes_per_micrometer(30.0);
    /// let device = leak * Length::from_micrometers(2.0);
    /// assert!((device.nanoamperes() - 60.0).abs() < 1e-9);
    /// ```
    CurrentPerLength, base = "A/m"
}

quantity_scales!(CurrentPerLength {
    /// Amperes per metre.
    from_amperes_per_meter / amperes_per_meter = 1.0,
    /// Nanoamperes per micrometre.
    from_nanoamperes_per_micrometer / nanoamperes_per_micrometer = 1e-3,
    /// Microamperes per micrometre.
    from_microamperes_per_micrometer / microamperes_per_micrometer = 1.0,
});

quantity! {
    /// Propagation delay per unit length in seconds per metre.
    ///
    /// A repeated wire's figure of merit: the paper's 1 mm segments run
    /// at roughly 60 ps/mm under nominal SRLR sizing.
    ///
    /// ```
    /// use srlr_units::{DelayPerLength, Length};
    /// let d = DelayPerLength::from_picoseconds_per_millimeter(60.0);
    /// let span = d * Length::from_millimeters(10.0);
    /// assert!((span.picoseconds() - 600.0).abs() < 1e-6);
    /// ```
    DelayPerLength, base = "s/m"
}

quantity_scales!(DelayPerLength {
    /// Seconds per metre.
    from_seconds_per_meter / seconds_per_meter = 1.0,
    /// Picoseconds per millimetre.
    from_picoseconds_per_millimeter / picoseconds_per_millimeter = 1e-9,
    /// Nanoseconds per millimetre.
    from_nanoseconds_per_millimeter / nanoseconds_per_millimeter = 1e-6,
});

// Density x extent recovers the lumped quantity (and both divisions).
quantity_product!(ResistancePerLength, Length => Resistance);
quantity_product!(CapacitancePerLength, Length => Capacitance);
quantity_product!(CapacitancePerArea, Area => Capacitance);
quantity_product!(CurrentPerLength, Length => Current);
quantity_product!(DelayPerLength, Length => TimeInterval);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_rc_extraction_round_trip() {
        let r = ResistancePerLength::from_ohms_per_meter(1.389e5);
        let c = CapacitancePerLength::from_femtofarads_per_micrometer(0.2);
        let len = Length::from_millimeters(1.0);
        let lumped_r = r * len;
        let lumped_c = c * len;
        assert!((lumped_r.ohms() - 138.9).abs() < 1e-9);
        assert!((lumped_c.femtofarads() - 200.0).abs() < 1e-9);
        let tau = lumped_r * lumped_c;
        assert!((tau.picoseconds() - 27.78).abs() < 1e-6);
    }

    #[test]
    fn division_recovers_density() {
        let lumped = Resistance::from_ohms(138.9);
        let density = lumped / Length::from_millimeters(1.0);
        assert!((density.ohms_per_millimeter() - 138.9).abs() < 1e-9);
    }

    #[test]
    fn gate_capacitance_from_cox_and_area() {
        let cox = CapacitancePerArea::from_farads_per_square_meter(1.5e-2);
        let area = Length::from_nanometers(1000.0) * Length::from_nanometers(45.0);
        let gate = cox * area;
        assert!((gate.femtofarads() - 0.675).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_width() {
        let leak = CurrentPerLength::from_amperes_per_meter(0.030);
        let i = leak * Length::from_micrometers(2.0);
        assert!((i.nanoamperes() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn delay_per_length_times_span() {
        let d = DelayPerLength::from_picoseconds_per_millimeter(61.0);
        let t = d * Length::from_millimeters(10.0);
        assert!((t.picoseconds() - 610.0).abs() < 1e-6);
        let back = t / Length::from_millimeters(10.0);
        assert!((back.picoseconds_per_millimeter() - 61.0).abs() < 1e-9);
    }

    #[test]
    fn scale_aliases_agree() {
        let a = CapacitancePerLength::from_femtofarads_per_micrometer(0.35);
        let b = CapacitancePerLength::from_nanofarads_per_meter(0.35);
        assert!((a.value() - b.value()).abs() < 1e-18);
        let c = CurrentPerLength::from_microamperes_per_micrometer(0.03);
        let d = CurrentPerLength::from_amperes_per_meter(0.03);
        assert!((c.value() - d.value()).abs() < 1e-18);
    }
}
