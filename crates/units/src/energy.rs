//! Energy and power.

use crate::time::TimeInterval;

quantity! {
    /// Energy in joules.
    ///
    /// The paper's headline number is 40.4 fJ per bit per millimetre; single
    /// link traversals are hundreds of femtojoules.
    ///
    /// ```
    /// use srlr_units::Energy;
    /// let e = Energy::from_femtojoules(404.0);
    /// assert_eq!(format!("{e}"), "404 fJ");
    /// ```
    Energy, base = "J"
}

quantity_scales!(Energy {
    /// Joules.
    from_joules / joules = 1.0,
    /// Millijoules.
    from_millijoules / millijoules = 1e-3,
    /// Microjoules.
    from_microjoules / microjoules = 1e-6,
    /// Nanojoules.
    from_nanojoules / nanojoules = 1e-9,
    /// Picojoules.
    from_picojoules / picojoules = 1e-12,
    /// Femtojoules.
    from_femtojoules / femtojoules = 1e-15,
});

quantity! {
    /// Power in watts.
    ///
    /// ```
    /// use srlr_units::Power;
    /// let link = Power::from_milliwatts(1.66);
    /// assert_eq!(format!("{link}"), "1.66 mW");
    /// ```
    Power, base = "W"
}

quantity_scales!(Power {
    /// Watts.
    from_watts / watts = 1.0,
    /// Milliwatts.
    from_milliwatts / milliwatts = 1e-3,
    /// Microwatts.
    from_microwatts / microwatts = 1e-6,
    /// Nanowatts.
    from_nanowatts / nanowatts = 1e-9,
});

quantity_product!(Power, TimeInterval => Energy); // E = P t

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_time_energy() {
        let p = Power::from_microwatts(587.0);
        let t = TimeInterval::from_nanoseconds(10.0);
        let e = p * t;
        assert!((e.femtojoules() - 5870.0).abs() < 1e-6);
    }

    #[test]
    fn divisions_recover_factors() {
        let e = Energy::from_picojoules(2.0);
        let t = TimeInterval::from_nanoseconds(1.0);
        assert!(((e / t).milliwatts() - 2.0).abs() < 1e-9);
        let p = Power::from_milliwatts(4.0);
        assert!(((e / p).picoseconds() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(format!("{}", Energy::from_femtojoules(40.4)), "40.4 fJ");
        assert_eq!(format!("{}", Power::from_microwatts(587.0)), "587 uW");
    }
}
