//! Electrical quantities: voltage, current, resistance, capacitance, charge.

use crate::energy::{Energy, Power};
use crate::time::TimeInterval;

quantity! {
    /// Electric potential in volts.
    ///
    /// Used for supply rails, swing voltages, threshold voltages and node
    /// waveform samples.
    ///
    /// ```
    /// use srlr_units::Voltage;
    /// let swing = Voltage::from_millivolts(350.0);
    /// assert_eq!(format!("{swing}"), "350 mV");
    /// ```
    Voltage, base = "V"
}

quantity_scales!(Voltage {
    /// Volts.
    from_volts / volts = 1.0,
    /// Millivolts.
    from_millivolts / millivolts = 1e-3,
    /// Microvolts.
    from_microvolts / microvolts = 1e-6,
});

quantity! {
    /// Electric current in amperes.
    ///
    /// ```
    /// use srlr_units::Current;
    /// let bias = Current::from_microamperes(12.5);
    /// assert!((bias.amperes() - 12.5e-6).abs() < 1e-15);
    /// ```
    Current, base = "A"
}

quantity_scales!(Current {
    /// Amperes.
    from_amperes / amperes = 1.0,
    /// Milliamperes.
    from_milliamperes / milliamperes = 1e-3,
    /// Microamperes.
    from_microamperes / microamperes = 1e-6,
    /// Nanoamperes.
    from_nanoamperes / nanoamperes = 1e-9,
});

quantity! {
    /// Resistance in ohms.
    ///
    /// ```
    /// use srlr_units::Resistance;
    /// let wire = Resistance::from_kilohms(1.4);
    /// assert!((wire.ohms() - 1400.0).abs() < 1e-9);
    /// ```
    Resistance, base = "Ohm"
}

quantity_scales!(Resistance {
    /// Ohms.
    from_ohms / ohms = 1.0,
    /// Kilohms.
    from_kilohms / kilohms = 1e3,
    /// Megohms.
    from_megohms / megohms = 1e6,
});

quantity! {
    /// Capacitance in farads.
    ///
    /// On-chip wires in this reproduction carry around 200 fF/mm; device
    /// gates are single femtofarads.
    ///
    /// ```
    /// use srlr_units::Capacitance;
    /// let seg = Capacitance::from_femtofarads(200.0);
    /// assert_eq!(format!("{seg}"), "200 fF");
    /// ```
    Capacitance, base = "F"
}

quantity_scales!(Capacitance {
    /// Farads.
    from_farads / farads = 1.0,
    /// Picofarads.
    from_picofarads / picofarads = 1e-12,
    /// Femtofarads.
    from_femtofarads / femtofarads = 1e-15,
    /// Attofarads.
    from_attofarads / attofarads = 1e-18,
});

quantity! {
    /// Electric charge in coulombs.
    ///
    /// ```
    /// use srlr_units::{Capacitance, Voltage};
    /// let q = Capacitance::from_femtofarads(100.0) * Voltage::from_volts(0.8);
    /// assert!((q.coulombs() - 80e-15).abs() < 1e-20);
    /// ```
    Charge, base = "C"
}

quantity_scales!(Charge {
    /// Coulombs.
    from_coulombs / coulombs = 1.0,
    /// Picocoulombs.
    from_picocoulombs / picocoulombs = 1e-12,
    /// Femtocoulombs.
    from_femtocoulombs / femtocoulombs = 1e-15,
});

// Dimensional relations.
quantity_product!(Current, Resistance => Voltage); // V = I R
quantity_product!(Resistance, Capacitance => TimeInterval); // tau = R C
quantity_product!(Capacitance, Voltage => Charge); // Q = C V
quantity_product!(Current, TimeInterval => Charge); // Q = I t
quantity_product!(Charge, Voltage => Energy); // E = Q V
quantity_product!(Voltage, Current => Power); // P = V I

impl Voltage {
    /// Linearly interpolates between `self` and `other`.
    ///
    /// `t = 0` gives `self`, `t = 1` gives `other`; `t` outside `[0, 1]`
    /// extrapolates.
    ///
    /// ```
    /// use srlr_units::Voltage;
    /// let a = Voltage::from_volts(0.0);
    /// let b = Voltage::from_volts(0.8);
    /// assert!((a.lerp(b, 0.25).volts() - 0.2).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        Self::new(self.value() + (other.value() - self.value()) * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_si_prefixes() {
        assert_eq!(format!("{}", Voltage::from_volts(0.8)), "800 mV");
        assert_eq!(format!("{}", Resistance::from_kilohms(1.4)), "1.4 kOhm");
        assert_eq!(format!("{}", Current::from_nanoamperes(3.0)), "3 nA");
    }

    #[test]
    fn display_respects_precision() {
        assert_eq!(
            format!("{:.1}", Voltage::from_millivolts(347.26)),
            "347.3 mV"
        );
    }

    #[test]
    fn arithmetic_base_ops() {
        let a = Voltage::from_volts(0.5);
        let b = Voltage::from_volts(0.3);
        assert!(((a + b).volts() - 0.8).abs() < 1e-12);
        assert!(((a - b).volts() - 0.2).abs() < 1e-12);
        assert!(((-a).volts() + 0.5).abs() < 1e-12);
        assert!(((a * 2.0).volts() - 1.0).abs() < 1e-12);
        assert!(((2.0 * a).volts() - 1.0).abs() < 1e-12);
        assert!(((a / 2.0).volts() - 0.25).abs() < 1e-12);
        assert!((a / b - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn assign_ops() {
        let mut v = Voltage::from_volts(0.1);
        v += Voltage::from_volts(0.2);
        v -= Voltage::from_volts(0.05);
        assert!((v.volts() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ordering_helpers() {
        let lo = Voltage::from_volts(0.2);
        let hi = Voltage::from_volts(0.5);
        assert_eq!(lo.min(hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(Voltage::from_volts(0.9).clamp(lo, hi), hi);
        assert_eq!(Voltage::from_volts(-0.1).clamp(lo, hi), lo);
        assert_eq!(
            Voltage::from_volts(0.3).clamp(lo, hi),
            Voltage::from_volts(0.3)
        );
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn clamp_panics_on_inverted_bounds() {
        let lo = Voltage::from_volts(0.5);
        let hi = Voltage::from_volts(0.2);
        let _ = Voltage::from_volts(0.3).clamp(lo, hi);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Voltage = (1..=4)
            .map(|i| Voltage::from_millivolts(f64::from(i)))
            .sum();
        assert!((total.millivolts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Voltage::from_volts(0.2);
        let b = Voltage::from_volts(0.6);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert!((a.lerp(b, 0.5).volts() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn charge_divisions_recover_factors() {
        let c = Capacitance::from_femtofarads(50.0);
        let v = Voltage::from_volts(0.4);
        let q = c * v;
        assert!(((q / v).femtofarads() - 50.0).abs() < 1e-9);
        assert!(((q / c).volts() - 0.4).abs() < 1e-12);
    }
}
