//! Deterministic fan-out of independent trials across OS threads.
//!
//! The workspace's statistical experiments (Monte Carlo dice, shmoo
//! cells, bathtub rate points, bundle lanes) are all *embarrassingly
//! parallel once every trial is a pure function of `(seed, index)`*.
//! This crate provides the one combinator they share: [`par_map_indexed`]
//! evaluates `f(0..n)` across a bounded set of scoped threads and returns
//! the results **in index order**, so the output is bit-identical to the
//! serial loop at every thread count — parallelism changes wall-clock
//! time, never results.
//!
//! Thread-count policy ([`resolve_threads`]): an explicit request wins,
//! then the `SRLR_THREADS` environment variable, then the machine's
//! available parallelism. A resolved count of 1 takes a serial fast path
//! that spawns nothing.
//!
//! The crate is dependency-free (`std::thread::scope`); it exists because
//! this repository must build in hermetic environments where `rayon`
//! cannot be vendored. The API is deliberately rayon-shaped so the
//! implementation could be swapped for a work-stealing pool without
//! touching callers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SRLR_THREADS";

/// Number of worker threads the machine offers (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves a worker count: `Some(n > 0)` is honoured verbatim;
/// `None` or `Some(0)` ("auto") consults `SRLR_THREADS`, then the
/// machine's available parallelism.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => std::env::var(THREADS_ENV)
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(available_threads),
    }
}

/// Evaluates `f` at every index in `0..n` using up to `threads` workers
/// and returns the results in index order.
///
/// Indices are split into contiguous chunks, one per worker, so the
/// assignment of work to threads is static and the output vector is
/// identical to `(0..n).map(f).collect()` regardless of `threads` —
/// provided `f` is a pure function of its index, which is the caller's
/// side of the determinism contract.
///
/// `threads <= 1` (or `n <= 1`) runs serially on the calling thread.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (worker, out_chunk) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = worker * chunk;
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            });
        }
    });
    slots
        .into_iter()
        // srlr-lint: allow(no-panic, reason = "invariant: chunks_mut partitions 0..n, so every slot is written exactly once before the scope joins")
        .map(|slot| slot.expect("every index was assigned to a worker"))
        .collect()
}

/// Counts the indices in `0..n` satisfying `pred`, fanned out like
/// [`par_map_indexed`]. The count is order-independent, so this is
/// deterministic under the same purity contract.
pub fn par_count<F>(n: usize, threads: usize, pred: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    par_map_indexed(n, threads, pred)
        .into_iter()
        .filter(|&hit| hit)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_at_every_thread_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            assert_eq!(
                par_map_indexed(97, threads, |i| i * i),
                expected,
                "diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn count_matches_filter() {
        for threads in [1, 2, 5] {
            assert_eq!(par_count(100, threads, |i| i % 3 == 0), 34);
        }
    }

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(1)), 1);
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn available_is_positive() {
        assert!(available_threads() >= 1);
    }
}
