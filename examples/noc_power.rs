//! Router and NoC power: reproduce the paper's Sec. IV breakdown
//! (buffers 38.8 mW / control 5.2 mW / datapath 12.9 mW) and sweep an
//! 8x8 mesh across load for both datapath implementations.
//!
//! Run with `cargo run --release --example noc_power`.

use srlr_noc::traffic::Pattern;
use srlr_noc::{DatapathKind, Network, NocConfig, PowerModel};
use srlr_tech::Technology;
use srlr_units::Frequency;

fn main() {
    let tech = Technology::soi45();

    println!("== calibration point (one saturated router, paper Sec. IV) ==");
    let model = PowerModel::paper_default(&tech);
    let cal = model.calibration_report(Frequency::from_gigahertz(1.0), 5);
    println!("paper:    buffers 38.8 mW | control 5.2 mW | datapath 12.9 mW");
    println!("measured: {cal}");

    println!("\n== 8x8 mesh load sweep, uniform random ==");
    println!(
        "{:>6} {:>24} {:>24} {:>12}",
        "load", "SRLR datapath [mW]", "full-swing [mW]", "saving"
    );
    for load in [0.02, 0.05, 0.10, 0.15] {
        let mut row = Vec::new();
        for datapath in [DatapathKind::SrlrLowSwing, DatapathKind::FullSwingRepeated] {
            let config = NocConfig::paper_default().with_datapath(datapath);
            let mut net = Network::new(config);
            let stats = net.run_warmup_and_measure(Pattern::UniformRandom, load, 500, 2000);
            let model = PowerModel::for_datapath(&tech, config.flit_bits, datapath);
            let report = model.report(&stats.energy, 2000, config.clock, config.mesh().len());
            row.push((report.datapath + report.bias).milliwatts());
        }
        println!(
            "{load:>6.2} {:>24.2} {:>24.2} {:>11.1}%",
            row[0],
            row[1],
            (1.0 - row[0] / row[1]) * 100.0
        );
    }
    println!("\n(buffers and control are identical across datapaths; the SRLR");
    println!(" attacks exactly the links+crossbar component the paper targets)");
}
