//! Transistor-level SRLR waveforms (the paper's Fig. 4), rendered as
//! ASCII strip charts from the transient simulator.
//!
//! Run with `cargo run --release --example waveforms`.

use srlr_core::transient::SrlrTransientFixture;
use srlr_tech::Technology;
use srlr_units::Voltage;

fn main() {
    let tech = Technology::soi45();
    println!("simulating one SRLR stage + 1 mm segment, pattern 1,0,1 at 4.1 Gb/s...");
    let waves = SrlrTransientFixture::fig4(&tech);

    println!(
        "\nIN — low-swing input pulses (peak {}):",
        waves.input.peak()
    );
    print!("{}", waves.input.ascii_plot(10, 100));

    println!("\nnode X — standby at VDD-Vth, discharge on detect, self-reset recharge:");
    print!("{}", waves.node_x.ascii_plot(10, 100));

    println!(
        "\nOUT — full-swing self-reset pulses (width {:?} ps):",
        waves
            .output
            .pulse_widths(Voltage::from_volts(0.4))
            .iter()
            .map(|w| w.picoseconds().round())
            .collect::<Vec<_>>()
    );
    print!("{}", waves.output.ascii_plot(10, 100));

    println!(
        "\nNEXT IN — the pulse repeated 1 mm downstream (peak {}):",
        waves.next_input.peak()
    );
    print!("{}", waves.next_input.ascii_plot(10, 100));
}
