//! Silicon-style "bring-up" of the SRLR test chip: shmoo the operating
//! region, read the demodulator eye, sweep the supply, and dump the
//! transistor-level waveforms to a VCD file for a waveform viewer.
//!
//! Run with `cargo run --release --example bringup`.

use srlr_circuit::vcd::VcdExporter;
use srlr_core::transient::SrlrTransientFixture;
use srlr_core::SrlrDesign;
use srlr_link::{measure_eye, shmoo, supply, SrlrLink};
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::{TimeInterval, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::soi45();

    println!("== shmoo: rate x swing operating region ('+' pass) ==");
    let plot = shmoo::paper_shmoo(&tech, 512);
    print!("{}", plot.render());
    println!("passing fraction: {:.0} %", plot.pass_fraction() * 100.0);

    println!("\n== demodulator eye at the paper's operating point ==");
    let link = SrlrLink::paper_test_chip(&tech);
    let eye = measure_eye(&link, 5_000);
    println!("{eye}");
    println!("eye open: {}", if eye.is_open() { "yes" } else { "NO" });

    println!("\n== supply scaling (rated at 0.7 x cliff) ==");
    let design = SrlrDesign::paper_proposed(&tech);
    let vdds: Vec<Voltage> = (6..=10)
        .map(|i| Voltage::from_volts(f64::from(i) / 10.0))
        .collect();
    for p in supply::supply_sweep(&tech, &design, &vdds) {
        println!(
            "  VDD {}: cliff {:.1} Gb/s, {:.1} fJ/bit/mm, {:.2} mW",
            p.vdd,
            p.max_rate.gigabits_per_second(),
            p.energy.femtojoules_per_bit_per_millimeter(),
            p.power.milliwatts()
        );
    }

    println!("\n== VCD dump of the Fig. 4 waveforms ==");
    let fixture = SrlrTransientFixture::build_chain(
        &tech,
        &design,
        &GlobalVariation::nominal(),
        &[true, false, true],
        TimeInterval::from_picoseconds(244.0),
        2,
    );
    let result = fixture.simulate_raw(TimeInterval::from_picoseconds(244.0 * 3.5));
    let mut vcd = VcdExporter::new("srlr");
    vcd.add("in", &result.waveform(fixture.input));
    for (i, &(x, out, delivered)) in fixture.stage_nodes.iter().enumerate() {
        vcd.add(&format!("s{i}_x"), &result.waveform(x));
        vcd.add(&format!("s{i}_out"), &result.waveform(out));
        vcd.add(&format!("s{i}_delivered"), &result.waveform(delivered));
    }
    let path = std::env::temp_dir().join("srlr_fig4.vcd");
    std::fs::write(&path, vcd.render())?;
    println!("wrote {} signals to {}", vcd.len(), path.display());
    Ok(())
}
