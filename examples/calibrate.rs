//! Calibration harness: Monte Carlo failure rates of every technique
//! combination, plus the Fig. 6 swing sweep. Used while tuning the
//! pulse-domain model against the paper's reported robustness numbers.

use srlr_core::{DelayCellDesign, DriverKind, SrlrDesign};
use srlr_link::montecarlo::McExperiment;
use srlr_tech::Technology;
use srlr_units::Voltage;

fn main() {
    let tech = Technology::soi45();
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let exp = McExperiment::paper_default(&tech).with_runs(runs);

    println!("== Technique combinations at the fabrication swing ({runs} dice) ==");
    let proposed = SrlrDesign::paper_proposed(&tech);
    let combos: Vec<(&str, SrlrDesign)> = vec![
        ("proposed (alt + NMOS + adaptive)", proposed.clone()),
        (
            "single delay only",
            proposed.with_delay_cell(DelayCellDesign::single_paper()),
        ),
        (
            "inverter driver only",
            proposed.with_driver(DriverKind::Inverter),
        ),
        ("fixed bias only", proposed.with_adaptive_swing(false)),
        (
            "straightforward (single + inverter + fixed)",
            SrlrDesign::straightforward(&tech),
        ),
    ];
    for (label, design) in &combos {
        let p = exp.error_probability(design);
        println!("{label:<46} {p}");
    }

    println!("\n== All 8 technique combinations ==");
    for delay in [
        ("alt", DelayCellDesign::alternating_paper()),
        ("single", DelayCellDesign::single_paper()),
    ] {
        for driver in [
            ("nmos", DriverKind::NmosBased),
            ("inv", DriverKind::Inverter),
        ] {
            for adaptive in [true, false] {
                let d = proposed
                    .with_delay_cell(delay.1)
                    .with_driver(driver.1)
                    .with_adaptive_swing(adaptive);
                let p = exp.error_probability(&d);
                println!(
                    "{:<8}{:<6}{:<10} {p}",
                    delay.0,
                    driver.0,
                    if adaptive { "adaptive" } else { "fixed" }
                );
            }
        }
    }

    println!("\n== Corner drift: largest survivable global Vth shift (mV) ==");
    use srlr_tech::GlobalVariation;
    for (label, delay) in [
        ("alternating", DelayCellDesign::alternating_paper()),
        ("single", DelayCellDesign::single_paper()),
    ] {
        let design = proposed.with_delay_cell(delay);
        let mut worst_pos = 0.0;
        let mut worst_neg = 0.0;
        for i in 0..=40 {
            let mv = f64::from(i) * 3.0;
            for sign in [1.0, -1.0] {
                let var = GlobalVariation {
                    dvth_n: Voltage::from_millivolts(sign * mv),
                    dvth_p: Voltage::from_millivolts(sign * mv),
                    ..GlobalVariation::nominal()
                };
                let chain = design.instantiate(&tech, &var, 10);
                if chain.propagate(chain.nominal_input_pulse()).is_valid() {
                    if sign > 0.0 {
                        worst_pos = mv;
                    } else {
                        worst_neg = mv;
                    }
                }
            }
        }
        println!("{label:<14} +{worst_pos} mV / -{worst_neg} mV");
    }

    println!("\n== Sec. III-A drift traces (fixed bias, +dVth corner) ==");
    for mv in [20.0, 30.0, 40.0, 50.0] {
        let var = GlobalVariation {
            dvth_n: Voltage::from_millivolts(mv),
            dvth_p: Voltage::from_millivolts(mv),
            ..GlobalVariation::nominal()
        };
        for (label, delay) in [
            ("single", DelayCellDesign::single_paper()),
            ("alt   ", DelayCellDesign::alternating_paper()),
        ] {
            let design = proposed.with_delay_cell(delay).with_adaptive_swing(false);
            let chain = design.instantiate(&tech, &var, 20);
            let trace = chain.propagate_trace(chain.nominal_input_pulse());
            let widths: Vec<String> = trace
                .iter()
                .map(|p| {
                    if p.is_valid() {
                        format!("{:.0}", p.width.picoseconds())
                    } else {
                        "X".into()
                    }
                })
                .collect();
            println!("+{mv} mV {label}: {}", widths.join(" "));
        }
    }

    println!("\n== Fast-corner ISI ('11110' at 4.1 Gb/s, fixed bias) ==");
    use srlr_link::{LinkConfig, SrlrLink};
    for mv in [-20.0, -40.0, -60.0, -80.0] {
        let var = GlobalVariation {
            dvth_n: Voltage::from_millivolts(mv),
            dvth_p: Voltage::from_millivolts(mv),
            ..GlobalVariation::nominal()
        };
        for (label, delay) in [
            ("single", DelayCellDesign::single_paper()),
            ("alt   ", DelayCellDesign::alternating_paper()),
        ] {
            for (dlabel, driver) in [
                ("nmos", DriverKind::NmosBased),
                ("inv ", DriverKind::Inverter),
            ] {
                let design = proposed
                    .with_delay_cell(delay)
                    .with_driver(driver)
                    .with_adaptive_swing(false);
                let link = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &var);
                let pattern: Vec<bool> = [true, true, true, true, false].repeat(8);
                let ok = link.transmit(&pattern).received == pattern;
                println!(
                    "{mv} mV {label} {dlabel}: {}",
                    if ok { "ok" } else { "FAIL" }
                );
            }
        }
    }

    println!("\n== Fig. 6 swing sweep ==");
    let swings: Vec<Voltage> = (5..=12)
        .map(|i| Voltage::from_millivolts(f64::from(i) * 50.0))
        .collect();
    for (label, design) in [
        ("proposed", proposed.clone()),
        ("straightforward", SrlrDesign::straightforward(&tech)),
    ] {
        println!("-- {label}");
        for (swing, p) in exp.swing_sweep(&design, &swings) {
            println!("  swing {swing}: {p}");
        }
    }
}
