//! Quickstart: build the paper's 1-bit 10 mm SRLR test link, feed it
//! PRBS data, and print the headline measurements.
//!
//! Run with `cargo run --release --example quickstart`.

use srlr_link::ber::BerTester;
use srlr_link::SrlrLink;
use srlr_tech::Technology;

fn main() {
    // The calibrated 45nm-SOI-like technology.
    let tech = Technology::soi45();
    println!("technology: {tech}");

    // The paper's test chip: proposed SRLR design, 10 stages (10 mm),
    // 4.1 Gb/s, typical die.
    let link = SrlrLink::paper_test_chip(&tech);
    println!(
        "link: {} stages over {}",
        link.chain().len(),
        link.chain().total_length()
    );

    // Feed it PRBS-15 and count errors, as the on-chip tester does.
    let report = BerTester::prbs15().run(&link, 500_000);
    println!("BER run: {report}");
    assert!(report.error_free(), "the nominal test chip must be clean");

    // The headline metrics (paper: 4.1 Gb/s, 6.83 Gb/s/um, 40.4 fJ/bit/mm,
    // 1.66 mW at 0.8 V).
    let metrics = link.metrics();
    println!("metrics: {metrics}");

    // A single pulse's journey down the repeater chain.
    let chain = link.chain();
    println!("\npulse trace (width / swing at each stage input):");
    for (i, p) in chain
        .propagate_trace(chain.nominal_input_pulse())
        .iter()
        .enumerate()
    {
        println!("  stage {i:>2}: {p}");
    }
}
