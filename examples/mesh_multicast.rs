//! Multicast on an 8x8 mesh with the SRLR datapath: tree-shared link
//! traversals versus unicast clones (the Sec. II "multicast for free"
//! claim), measured on live traffic.
//!
//! Run with `cargo run --release --example mesh_multicast`.

use srlr_noc::traffic::Pattern;
use srlr_noc::{Coord, MulticastAccounting, Network, NocConfig, PowerModel};
use srlr_tech::Technology;

fn main() {
    let tech = Technology::soi45();
    let config = NocConfig::paper_default();
    let mesh = config.mesh();

    // Static view: one multicast tree.
    let src = Coord::new(0, 0);
    let dsts = [Coord::new(7, 0), Coord::new(7, 3), Coord::new(7, 7)];
    let acc = MulticastAccounting::new(mesh, src, &dsts);
    println!(
        "tree {} -> {:?}: {} tree hops vs {} unicast hops ({:.2}x saving)",
        src,
        dsts,
        acc.tree_hops(),
        acc.unicast_hops(),
        acc.saving_factor()
    );

    // Dynamic view: run multicast traffic and compare datapath energy
    // with and without the free-multicast discount.
    let mut net = Network::new(config);
    let stats = net.run_warmup_and_measure(Pattern::Multicast { fanout: 4 }, 0.01, 500, 3000);
    println!("\nmulticast traffic (fanout 4): {stats}");

    let model = PowerModel::paper_default(&tech);
    let power = model.report(&stats.energy, 3000, config.clock, mesh.len());
    println!(
        "datapath power paying every branch: {:.2} mW",
        power.datapath.milliwatts()
    );

    let saved = net.multicast_saved_hops();
    let saved_power = srlr_units::Power::from_watts(
        model.hop_energy().joules() * saved as f64 / (config.clock.period() * 3500.0).seconds(),
    );
    println!(
        "hops the SRLR's free multicast absorbs: {saved} (≈ {:.2} mW of datapath power)",
        saved_power.milliwatts()
    );
    println!(
        "datapath power with tree sharing: ≈ {:.2} mW",
        (power.datapath - saved_power).milliwatts().max(0.0)
    );
}
