//! Integration checks of the Fig. 6 Monte Carlo experiment and the
//! Sec. III robustness techniques.

use srlr_link::montecarlo::McExperiment;
use srlr_link::{LinkConfig, SrlrLink};
use srlr_repro::core::{DelayCellDesign, SrlrDesign};
use srlr_repro::tech::{GlobalVariation, ProcessCorner, Technology};
use srlr_units::Voltage;

#[test]
fn proposed_beats_straightforward_by_a_paper_like_margin() {
    let tech = Technology::soi45();
    let exp = McExperiment::paper_default(&tech).with_runs(400);
    let (proposed, straightforward, ratio) = exp.immunity_ratio();
    assert!(
        straightforward.failures > proposed.failures,
        "proposed {proposed} vs straightforward {straightforward}"
    );
    // Paper reports 3.7x; accept a generous band around it.
    assert!(ratio > 2.0, "immunity ratio {ratio}");
}

#[test]
fn error_probability_falls_with_swing() {
    let tech = Technology::soi45();
    let exp = McExperiment::paper_default(&tech).with_runs(200);
    let design = SrlrDesign::paper_proposed(&tech);
    let sweep = exp.swing_sweep(
        &design,
        &[
            Voltage::from_millivolts(350.0),
            Voltage::from_millivolts(460.0),
            Voltage::from_millivolts(550.0),
        ],
    );
    assert!(sweep[0].1.failures >= sweep[1].1.failures);
    assert!(sweep[1].1.failures >= sweep[2].1.failures);
}

#[test]
fn all_five_corners_pass_with_the_proposed_design() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    for corner in ProcessCorner::ALL {
        let var = corner.variation(&tech);
        let link = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &var);
        let pattern: Vec<bool> = [true, true, true, true, false, true, false, false].repeat(8);
        let out = link.transmit(&pattern);
        assert_eq!(out.received, pattern, "corner {corner} corrupted data");
    }
}

#[test]
fn single_delay_cell_drifts_monotonically_at_a_slow_corner() {
    // The paper's eq. (1): W_out,0 > W_out,1 > ... at a slow corner for
    // the single-delay-cell design (fixed bias exposes the drift).
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech)
        .with_delay_cell(DelayCellDesign::single_paper())
        .with_adaptive_swing(false);
    let var = GlobalVariation {
        dvth_n: Voltage::from_millivolts(25.0),
        dvth_p: Voltage::from_millivolts(25.0),
        ..GlobalVariation::nominal()
    };
    let chain = design.instantiate(&tech, &var, 10);
    let trace = chain.propagate_trace(chain.nominal_input_pulse());
    let widths: Vec<f64> = trace
        .iter()
        .take_while(|p| p.is_valid())
        .map(|p| p.width.picoseconds())
        .collect();
    assert!(widths.len() >= 4, "drift should persist a few stages");
    for pair in widths.windows(2) {
        assert!(
            pair[1] <= pair[0] + 0.5,
            "widths must shrink monotonically: {widths:?}"
        );
    }
}

#[test]
fn adaptive_bias_rescues_the_slow_corner() {
    let tech = Technology::soi45();
    let var = ProcessCorner::SlowSlow.variation(&tech);
    let fixed = SrlrDesign::paper_proposed(&tech).with_adaptive_swing(false);
    let adaptive = SrlrDesign::paper_proposed(&tech);
    let bits = [true; 12];

    let dead = SrlrLink::on_die(&tech, &fixed, LinkConfig::paper_default(), &var);
    assert!(
        dead.transmit(&bits).received.iter().all(|&b| !b),
        "fixed bias should drop everything at SS"
    );
    let alive = SrlrLink::on_die(&tech, &adaptive, LinkConfig::paper_default(), &var);
    assert_eq!(alive.transmit(&bits).received, bits);
}

#[test]
fn link_works_across_the_commercial_temperature_range() {
    // Footnote 3's claim in action: the Oguey-referenced adaptive bias
    // keeps the link clean from -40 C to 85 C at the paper's rate.
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    for celsius in [-40.0, 0.0, 27.0, 60.0, 85.0] {
        let var = srlr_repro::tech::Temperature::from_celsius(celsius).as_variation();
        let link = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &var);
        let bits: Vec<bool> = [true, true, true, true, false, true, false, false].repeat(32);
        assert_eq!(
            link.transmit(&bits).received,
            bits,
            "data corrupted at {celsius} C"
        );
    }
}

#[test]
fn hot_corner_needs_extra_swing_not_less_rate() {
    // At 105 C the adaptive bias *reduces* the commanded swing (it tracks
    // the falling threshold) while the driver's mobility collapses — the
    // delivered swing drops below sensitivity and `1`s are lost
    // regardless of rate. The remedy is swing headroom, the same knob
    // Fig. 6 sweeps.
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let hot = srlr_repro::tech::Temperature::from_celsius(105.0).as_variation();
    let bits: Vec<bool> = [true, true, true, true, false].repeat(40);

    let stock = SrlrLink::on_die(&tech, &design, LinkConfig::paper_default(), &hot);
    assert_ne!(
        stock.transmit(&bits).received,
        bits,
        "105 C should fail at the stock swing"
    );

    let boosted = design.with_nominal_swing(Voltage::from_millivolts(540.0));
    let fixed = SrlrLink::on_die(&tech, &boosted, LinkConfig::paper_default(), &hot);
    assert_eq!(
        fixed.transmit(&bits).received,
        bits,
        "extra commanded swing should restore the 105 C corner"
    );
}

#[test]
fn mc_experiment_reproducible_across_processes() {
    // Fixed seed, fixed result — the Fig. 6 numbers are exactly
    // reproducible, not just statistically similar.
    let tech = Technology::soi45();
    let exp = McExperiment::paper_default(&tech).with_runs(120);
    let design = SrlrDesign::paper_proposed(&tech);
    let a = exp.error_probability(&design);
    let b = exp.error_probability(&design);
    assert_eq!(a, b);
}
