//! Route-legality validation via packet tracing: XY routes must be
//! minimal and dimension-ordered; west-first routes must be minimal and
//! never turn into the west direction.

use srlr_noc::traffic::Pattern;
use srlr_noc::{Coord, Network, NocConfig, RoutingAlgorithm};

fn traced_network(routing: RoutingAlgorithm, load: f64, cycles: u64) -> Network {
    let mut net = Network::new(
        NocConfig::paper_default()
            .with_size(6, 6)
            .with_routing(routing),
    );
    net.enable_tracing();
    let _ = net.run_warmup_and_measure(Pattern::UniformRandom, load, 0, cycles);
    assert!(net.drain(50_000), "network must drain");
    net
}

/// Direction of one step, as (dx, dy).
fn step(a: Coord, b: Coord) -> (i32, i32) {
    (
        i32::from(b.x) - i32::from(a.x),
        i32::from(b.y) - i32::from(a.y),
    )
}

#[test]
fn xy_routes_are_minimal_and_dimension_ordered() {
    let net = traced_network(RoutingAlgorithm::Xy, 0.05, 800);
    let mut checked = 0;
    for trace in net.traces().values() {
        if trace.len() < 2 {
            continue;
        }
        let (src, dst) = (trace[0], *trace.last().unwrap());
        // Minimal: exactly hop-distance steps.
        assert_eq!(
            trace.len() as u32 - 1,
            src.hop_distance(dst),
            "non-minimal XY route {trace:?}"
        );
        // Dimension-ordered: no x-movement after any y-movement.
        let mut seen_y = false;
        for w in trace.windows(2) {
            let (dx, dy) = step(w[0], w[1]);
            assert_eq!(dx.abs() + dy.abs(), 1, "non-unit step in {trace:?}");
            if dy != 0 {
                seen_y = true;
            }
            if dx != 0 {
                assert!(!seen_y, "x after y in XY route {trace:?}");
            }
        }
        checked += 1;
    }
    assert!(checked > 100, "too few traces to be meaningful: {checked}");
}

#[test]
fn west_first_routes_are_minimal_and_turn_legal() {
    let net = traced_network(RoutingAlgorithm::WestFirst, 0.05, 800);
    let mut checked = 0;
    for trace in net.traces().values() {
        if trace.len() < 2 {
            continue;
        }
        let (src, dst) = (trace[0], *trace.last().unwrap());
        assert_eq!(
            trace.len() as u32 - 1,
            src.hop_distance(dst),
            "non-minimal west-first route {trace:?}"
        );
        // Turn model: once any non-west step occurs, never step west.
        let mut left_west_phase = false;
        for w in trace.windows(2) {
            let (dx, _) = step(w[0], w[1]);
            if dx >= 0 {
                left_west_phase = true;
            }
            if dx < 0 {
                assert!(!left_west_phase, "illegal turn into west in {trace:?}");
            }
        }
        checked += 1;
    }
    assert!(checked > 100, "too few traces: {checked}");
}

#[test]
fn tracing_is_opt_in() {
    let mut net = Network::new(NocConfig::paper_default().with_size(4, 4));
    let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 0, 200);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = net.traces();
    }));
    assert!(result.is_err(), "traces() must panic when not enabled");
}
