//! Integration checks of the characterisation stack: shmoo, eye, bathtub,
//! bundle and supply sweeps agree with each other and with the headline
//! calibration.

use srlr_link::bundle::LinkBundle;
use srlr_link::{bathtub, measure_eye, shmoo, supply, SrlrLink};
use srlr_repro::core::SrlrDesign;
use srlr_repro::tech::Technology;
use srlr_units::{DataRate, TimeInterval, Voltage};

#[test]
fn shmoo_and_bathtub_agree_on_the_rate_ceiling() {
    // The shmoo's pass/fail boundary at the fabrication swing and the
    // jittered bathtub's wall must sit within a gigabit of each other
    // (jitter only erodes, never extends, the clean region).
    let tech = Technology::soi45();
    let plot = shmoo::paper_shmoo(&tech, 256);
    let row = plot
        .swings
        .iter()
        .position(|s| (s.millivolts() - 450.0).abs() < 1.0)
        .expect("450 mV row");
    let shmoo_ceiling = plot
        .rates
        .iter()
        .enumerate()
        .filter(|&(col, _)| plot.passes(row, col))
        .map(|(_, r)| r.gigabits_per_second())
        .fold(0.0f64, f64::max);

    let design = SrlrDesign::paper_proposed(&tech);
    let rates: Vec<DataRate> = (8..=14)
        .map(|i| DataRate::from_gigabits_per_second(f64::from(i) * 0.5))
        .collect();
    let curve = bathtub::rate_bathtub(
        &tech,
        &design,
        &rates,
        TimeInterval::from_picoseconds(3.0),
        400,
        4,
    );
    let wall = curve
        .iter()
        .find(|p| p.errors > 0)
        .map_or(7.0, |p| p.rate.gigabits_per_second());

    assert!(
        wall <= shmoo_ceiling + 1.0,
        "bathtub wall {wall} far beyond the shmoo ceiling {shmoo_ceiling}"
    );
    assert!(shmoo_ceiling >= 5.0, "shmoo ceiling {shmoo_ceiling}");
}

#[test]
fn eye_margins_predict_the_shmoo_floor() {
    // The shmoo fails below ~400 mV commanded swing; the eye at the
    // fabrication point must therefore show a swing margin smaller than
    // that 60 mV step (the distance to the cliff) times the delivered
    // fraction — i.e. a *finite*, explainable margin.
    let tech = Technology::soi45();
    let link = SrlrLink::paper_test_chip(&tech);
    let eye = measure_eye(&link, 2_000);
    assert!(eye.is_open());
    let margin_mv = eye.swing_margin().millivolts();
    assert!(
        margin_mv > 20.0 && margin_mv < 120.0,
        "swing margin {margin_mv} mV inconsistent with the shmoo floor"
    );
}

#[test]
fn bundle_power_matches_lane_metrics_times_width() {
    let tech = Technology::soi45();
    let bundle = LinkBundle::paper_64bit(&tech, 11);
    let lane = SrlrLink::paper_test_chip(&tech).metrics().power;
    let total = bundle.total_power();
    let expect = lane * 64.0;
    let ratio = total / expect;
    // Within a few percent: lanes carry mismatch, plus leakage and bias.
    assert!(
        (0.95..=1.10).contains(&ratio),
        "bundle power {total} vs 64x lane {expect}"
    );
}

#[test]
fn supply_sweep_contains_the_calibration_point() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let points = supply::supply_sweep(&tech, &design, &[Voltage::from_volts(0.8)]);
    assert_eq!(points.len(), 1);
    let p = points[0];
    // The 0.8 V rated point reproduces the headline energy band.
    let e = p.energy.femtojoules_per_bit_per_millimeter();
    assert!((e - 40.4).abs() < 40.4 * 0.25, "energy {e}");
    let cliff = p.max_rate.gigabits_per_second();
    assert!((4.0..8.0).contains(&cliff), "cliff {cliff}");
}
