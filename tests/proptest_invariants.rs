//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use srlr_repro::circuit::Waveform;
use srlr_repro::core::{PulseState, SrlrDesign};
use srlr_repro::noc::{Coord, Mesh};
use srlr_repro::tech::{MonteCarlo, Technology, WireGeometry};
use srlr_repro::units::{Length, TimeInterval, Voltage};
use srlr_link::Prbs;

proptest! {
    /// Voltage arithmetic is associative-enough and ordering-compatible.
    #[test]
    fn voltage_add_sub_round_trip(a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let va = Voltage::from_volts(a);
        let vb = Voltage::from_volts(b);
        let back = (va + vb) - vb;
        prop_assert!((back.volts() - a).abs() < 1e-12);
        prop_assert_eq!(va.min(vb) <= va.max(vb), true);
    }

    /// SI display never panics and always carries the base unit.
    #[test]
    fn si_display_total(value in prop::num::f64::ANY) {
        let v = Voltage::from_volts(value);
        let s = format!("{v}");
        prop_assert!(s.ends_with('V'));
    }

    /// Wire extraction scales linearly in length for any geometry.
    #[test]
    fn wire_extraction_linear(
        width_um in 0.1f64..1.0,
        space_um in 0.1f64..1.0,
        len_mm in 0.1f64..10.0,
    ) {
        let g = WireGeometry {
            width: Length::from_micrometers(width_um),
            space: Length::from_micrometers(space_um),
            ..WireGeometry::paper_default()
        };
        let one = g.extract(Length::from_millimeters(len_mm));
        let two = g.extract(Length::from_millimeters(2.0 * len_mm));
        prop_assert!((two.resistance.ohms() / one.resistance.ohms() - 2.0).abs() < 1e-9);
        prop_assert!((two.capacitance.farads() / one.capacitance.farads() - 2.0).abs() < 1e-9);
    }

    /// The MOSFET model's current is monotone in gate voltage for any
    /// physical drain bias.
    #[test]
    fn mosfet_monotone_in_vgs(vds_mv in 10.0f64..800.0, step in 1u32..16) {
        let m = srlr_repro::tech::MosfetModel::nmos_soi45();
        let vds = Voltage::from_millivolts(vds_mv);
        let lo = Voltage::from_millivolts(f64::from(step) * 50.0);
        let hi = lo + Voltage::from_millivolts(50.0);
        prop_assert!(
            m.drain_current_per_ratio(hi, vds) >= m.drain_current_per_ratio(lo, vds)
        );
    }

    /// XY routing always produces a path of exactly the Manhattan length,
    /// entirely inside the mesh.
    #[test]
    fn xy_path_is_minimal(
        cols in 2u16..10, rows in 2u16..10,
        sx in 0u16..10, sy in 0u16..10, dx in 0u16..10, dy in 0u16..10,
    ) {
        let mesh = Mesh::new(cols, rows);
        let src = Coord::new(sx % cols, sy % rows);
        let dst = Coord::new(dx % cols, dy % rows);
        let path = mesh.xy_path(src, dst);
        prop_assert_eq!(path.len() as u32, src.hop_distance(dst) + 1);
        prop_assert!(path.iter().all(|&c| mesh.contains(c)));
    }

    /// PRBS sequences are balanced to within the maximal-sequence bound.
    #[test]
    fn prbs_is_balanced(seed in 1u32..127) {
        let mut gen = Prbs::prbs7_with_seed(seed);
        let ones = gen.take_bits(127).iter().filter(|&&b| b).count();
        prop_assert_eq!(ones, 64);
    }

    /// Waveform threshold crossings alternate rising/falling.
    #[test]
    fn crossings_alternate(samples in prop::collection::vec(0.0f64..1.0, 3..40)) {
        let w: Waveform = samples
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                (TimeInterval::from_picoseconds(i as f64), Voltage::from_volts(v))
            })
            .collect();
        let crossings = w.crossings(Voltage::from_volts(0.5));
        for pair in crossings.windows(2) {
            prop_assert_ne!(pair[0].1, pair[1].1, "edges must alternate");
        }
    }

    /// A stage's delivered swing is monotone in pulse width and bounded
    /// by its drive level.
    #[test]
    fn delivered_swing_monotone_bounded(w1 in 5.0f64..300.0, w2 in 5.0f64..300.0) {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let chain = design.instantiate(
            &tech,
            &srlr_repro::tech::GlobalVariation::nominal(),
            1,
        );
        let stage = &chain.stages()[0];
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let s_lo = stage.delivered_swing(TimeInterval::from_picoseconds(lo));
        let s_hi = stage.delivered_swing(TimeInterval::from_picoseconds(hi));
        prop_assert!(s_lo <= s_hi);
        prop_assert!(s_hi <= stage.drive_level);
    }

    /// Propagating any pulse never produces a wider-than-physical output
    /// and never panics.
    #[test]
    fn stage_process_is_total(width_ps in 0.0f64..500.0, swing_mv in 0.0f64..800.0) {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let chain = design.instantiate(
            &tech,
            &srlr_repro::tech::GlobalVariation::nominal(),
            1,
        );
        let input = PulseState::new(
            TimeInterval::from_picoseconds(width_ps),
            Voltage::from_millivolts(swing_mv),
        );
        let out = chain.stages()[0].process(input);
        if out.output.is_valid() {
            // W_out = delay − (t_rise − t_fall): bounded by the delay
            // cell's contribution plus the fall-time surplus.
            let stage = &chain.stages()[0];
            prop_assert!(out.output.width <= stage.delay + stage.t_fall);
            prop_assert!(out.output.swing <= stage.drive_level);
        }
    }

    /// Monte Carlo dice are always physical regardless of seed.
    #[test]
    fn monte_carlo_dice_physical(seed in 0u64..10_000) {
        let tech = Technology::soi45();
        let mut mc = MonteCarlo::new(&tech, seed);
        for die in mc.dice(8) {
            prop_assert!(die.is_physical());
        }
    }

    /// Transmitting any bit pattern through the nominal link returns it
    /// unchanged (the nominal die is inside the eye for all patterns at
    /// the paper's rate).
    #[test]
    fn nominal_link_is_transparent(bits in prop::collection::vec(any::<bool>(), 1..64)) {
        let tech = Technology::soi45();
        let link = srlr_link::SrlrLink::paper_test_chip(&tech);
        let out = link.transmit(&bits);
        prop_assert_eq!(out.received, bits);
    }
}
