//! Property-style tests over the core data structures and invariants.
//!
//! These were originally `proptest` properties; in the hermetic build
//! they are driven by deterministic `srlr-rng` sampling instead — every
//! case is a pure function of the fixed seed, so failures reproduce
//! exactly without a shrinker or a regression file.

use srlr_link::{LinkErrorModel, Prbs};
use srlr_repro::circuit::Waveform;
use srlr_repro::core::{PulseState, SrlrDesign};
use srlr_repro::noc::{Coord, Mesh};
use srlr_repro::tech::montecarlo::ErrorProbability;
use srlr_repro::tech::{GlobalVariation, MonteCarlo, Technology, WireGeometry};
use srlr_repro::units::{Length, TimeInterval, Voltage};
use srlr_rng::Xoshiro256pp;

/// Cases per property (proptest's default).
const CASES: usize = 256;

/// A uniform draw in `[lo, hi)`.
fn uniform(rng: &mut Xoshiro256pp, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Voltage arithmetic is associative-enough and ordering-compatible.
#[test]
fn voltage_add_sub_round_trip() {
    let mut rng = Xoshiro256pp::new(0xA001);
    for _ in 0..CASES {
        let a = uniform(&mut rng, -2.0, 2.0);
        let b = uniform(&mut rng, -2.0, 2.0);
        let va = Voltage::from_volts(a);
        let vb = Voltage::from_volts(b);
        let back = (va + vb) - vb;
        assert!((back.volts() - a).abs() < 1e-12, "a={a} b={b}");
        assert!(va.min(vb) <= va.max(vb));
    }
}

/// SI display never panics and always carries the base unit, including
/// for non-finite and denormal magnitudes.
#[test]
fn si_display_total() {
    let mut rng = Xoshiro256pp::new(0xA002);
    for _ in 0..CASES {
        // Any bit pattern at all is a legal f64 input to the formatter.
        let value = f64::from_bits(rng.next_u64());
        let s = format!("{}", Voltage::from_volts(value));
        assert!(s.ends_with('V'), "{value:?} displayed as {s}");
    }
    for value in [
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        5e-324,
    ] {
        let s = format!("{}", Voltage::from_volts(value));
        assert!(s.ends_with('V'), "{value:?} displayed as {s}");
    }
}

/// Wire extraction scales linearly in length for any geometry.
#[test]
fn wire_extraction_linear() {
    let mut rng = Xoshiro256pp::new(0xA003);
    for _ in 0..CASES {
        let width_um = uniform(&mut rng, 0.1, 1.0);
        let space_um = uniform(&mut rng, 0.1, 1.0);
        let len_mm = uniform(&mut rng, 0.1, 10.0);
        let g = WireGeometry {
            width: Length::from_micrometers(width_um),
            space: Length::from_micrometers(space_um),
            ..WireGeometry::paper_default()
        };
        let one = g.extract(Length::from_millimeters(len_mm));
        let two = g.extract(Length::from_millimeters(2.0 * len_mm));
        assert!((two.resistance.ohms() / one.resistance.ohms() - 2.0).abs() < 1e-9);
        assert!((two.capacitance.farads() / one.capacitance.farads() - 2.0).abs() < 1e-9);
    }
}

/// The MOSFET model's current is monotone in gate voltage for any
/// physical drain bias.
#[test]
fn mosfet_monotone_in_vgs() {
    let m = srlr_repro::tech::MosfetModel::nmos_soi45();
    let mut rng = Xoshiro256pp::new(0xA004);
    for _ in 0..CASES {
        let vds = Voltage::from_millivolts(uniform(&mut rng, 10.0, 800.0));
        let step = 1 + rng.index(15) as u32;
        let lo = Voltage::from_millivolts(f64::from(step) * 50.0);
        let hi = lo + Voltage::from_millivolts(50.0);
        assert!(
            m.drain_current_per_ratio(hi, vds) >= m.drain_current_per_ratio(lo, vds),
            "vds={vds} step={step}"
        );
    }
}

/// XY routing always produces a path of exactly the Manhattan length,
/// entirely inside the mesh.
#[test]
fn xy_path_is_minimal() {
    let mut rng = Xoshiro256pp::new(0xA005);
    for _ in 0..CASES {
        let cols = 2 + rng.index(8) as u16;
        let rows = 2 + rng.index(8) as u16;
        let mesh = Mesh::new(cols, rows);
        let src = Coord::new(
            rng.index(cols as usize) as u16,
            rng.index(rows as usize) as u16,
        );
        let dst = Coord::new(
            rng.index(cols as usize) as u16,
            rng.index(rows as usize) as u16,
        );
        let path = mesh.xy_path(src, dst);
        assert_eq!(path.len() as u32, src.hop_distance(dst) + 1);
        assert!(path.iter().all(|&c| mesh.contains(c)));
    }
}

/// PRBS sequences are balanced to within the maximal-sequence bound for
/// every non-zero PRBS-7 seed.
#[test]
fn prbs_is_balanced() {
    for seed in 1u32..127 {
        let mut gen = Prbs::prbs7_with_seed(seed);
        let ones = gen.take_bits(127).iter().filter(|&&b| b).count();
        assert_eq!(ones, 64, "seed {seed}");
    }
}

/// Waveform threshold crossings alternate rising/falling.
#[test]
fn crossings_alternate() {
    let mut rng = Xoshiro256pp::new(0xA006);
    for _ in 0..CASES {
        let len = 3 + rng.index(37);
        let w: Waveform = (0..len)
            .map(|i| {
                (
                    TimeInterval::from_picoseconds(i as f64),
                    Voltage::from_volts(rng.next_f64()),
                )
            })
            .collect();
        let crossings = w.crossings(Voltage::from_volts(0.5));
        for pair in crossings.windows(2) {
            assert_ne!(pair[0].1, pair[1].1, "edges must alternate");
        }
    }
}

/// A stage's delivered swing is monotone in pulse width and bounded by
/// its drive level.
#[test]
fn delivered_swing_monotone_bounded() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let chain = design.instantiate(&tech, &GlobalVariation::nominal(), 1);
    let stage = &chain.stages()[0];
    let mut rng = Xoshiro256pp::new(0xA007);
    for _ in 0..CASES {
        let w1 = uniform(&mut rng, 5.0, 300.0);
        let w2 = uniform(&mut rng, 5.0, 300.0);
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let s_lo = stage.delivered_swing(TimeInterval::from_picoseconds(lo));
        let s_hi = stage.delivered_swing(TimeInterval::from_picoseconds(hi));
        assert!(s_lo <= s_hi, "w {lo} vs {hi}");
        assert!(s_hi <= stage.drive_level);
    }
}

/// Propagating any pulse never produces a wider-than-physical output and
/// never panics.
#[test]
fn stage_process_is_total() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let chain = design.instantiate(&tech, &GlobalVariation::nominal(), 1);
    let stage = &chain.stages()[0];
    let mut rng = Xoshiro256pp::new(0xA008);
    for _ in 0..CASES {
        let width_ps = uniform(&mut rng, 0.0, 500.0);
        let swing_mv = uniform(&mut rng, 0.0, 800.0);
        let input = PulseState::new(
            TimeInterval::from_picoseconds(width_ps),
            Voltage::from_millivolts(swing_mv),
        );
        let out = stage.process(input);
        if out.output.is_valid() {
            // W_out = delay − (t_rise − t_fall): bounded by the delay
            // cell's contribution plus the fall-time surplus.
            assert!(out.output.width <= stage.delay + stage.t_fall);
            assert!(out.output.swing <= stage.drive_level);
        }
    }
}

/// Monte Carlo dice are always physical regardless of seed, whether
/// drawn sequentially or by trial index.
#[test]
fn monte_carlo_dice_physical() {
    let tech = Technology::soi45();
    let mut rng = Xoshiro256pp::new(0xA009);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 10_000;
        let mut mc = MonteCarlo::new(&tech, seed);
        for die in mc.dice(8) {
            assert!(die.is_physical(), "seed {seed}");
        }
        let mc = MonteCarlo::new(&tech, seed);
        for trial in 0..8 {
            assert!(
                mc.sample_die_at(trial).is_physical(),
                "seed {seed} trial {trial}"
            );
        }
    }
}

/// Transmitting any bit pattern through the nominal link returns it
/// unchanged (the nominal die is inside the eye for all patterns at the
/// paper's rate), and the early-exit check agrees with the full
/// transmission.
#[test]
fn nominal_link_is_transparent() {
    let tech = Technology::soi45();
    let link = srlr_link::SrlrLink::paper_test_chip(&tech);
    let mut rng = Xoshiro256pp::new(0xA00A);
    for _ in 0..CASES {
        let len = 1 + rng.index(63);
        let bits: Vec<bool> = (0..len).map(|_| rng.next_u64() & 1 == 1).collect();
        let out = link.transmit(&bits);
        assert_eq!(out.received, bits);
        assert!(link.transmits_cleanly(&bits));
    }
}

/// The Wilson-score 95 % upper bound is a genuine bound: it dominates
/// the point estimate, stays in `[0, 1]`, and is strictly positive even
/// after an error-free run, for any failure count and trial count.
#[test]
fn wilson_upper_bound_dominates_the_estimate() {
    let mut rng = Xoshiro256pp::new(0xA00B);
    for _ in 0..CASES {
        let trials = 1 + rng.index(1_000_000);
        let failures = rng.index(trials + 1);
        let p = ErrorProbability { failures, trials };
        let bound = p.upper_bound_95();
        assert!(
            bound >= p.estimate(),
            "bound {bound} < estimate {} at {failures}/{trials}",
            p.estimate()
        );
        assert!((0.0..=1.0).contains(&bound), "{failures}/{trials}: {bound}");
        if failures == 0 {
            assert!(bound > 0.0, "zero failures in {trials} proves nothing");
        }
    }
}

/// With zero failures the bound shrinks monotonically as evidence
/// accumulates, covering the extreme edges: a single trial is nearly
/// uninformative, a huge run pins the bound near zero.
#[test]
fn wilson_zero_failure_bound_tightens_with_trials() {
    let one = ErrorProbability {
        failures: 0,
        trials: 1,
    }
    .upper_bound_95();
    assert!(one > 0.5, "one clean trial bounds almost nothing: {one}");
    let mut prev = one;
    for exp in 1..=9 {
        let trials = 10usize.pow(exp);
        let bound = ErrorProbability {
            failures: 0,
            trials,
        }
        .upper_bound_95();
        assert!(
            bound < prev,
            "bound must tighten: {bound} at n={trials} vs {prev}"
        );
        prev = bound;
    }
    assert!(prev < 1e-8, "1e9 clean trials must pin the bound: {prev}");
    // All-failures saturates exactly at the clamp.
    let all = ErrorProbability {
        failures: 50,
        trials: 50,
    }
    .upper_bound_95();
    assert!((all - 1.0).abs() < 1e-12, "{all}");
}

/// [`LinkErrorModel`] inherits the Wilson guarantees: the effective BER
/// fed to the fault injector never under-reports the point estimate.
#[test]
fn link_error_model_effective_ber_is_conservative() {
    let mut rng = Xoshiro256pp::new(0xA00C);
    for _ in 0..CASES {
        let bits = 1 + rng.index(100_000);
        let errors = rng.index(bits + 1);
        let m = LinkErrorModel { bits, errors };
        assert!(m.ber_upper_bound() >= m.ber(), "{errors}/{bits}");
        assert!(m.effective_ber() >= m.ber(), "{errors}/{bits}");
        assert_eq!(m.is_bounded(), errors == 0);
        if errors > 0 {
            assert_eq!(m.effective_ber(), m.ber());
        } else {
            assert_eq!(m.effective_ber(), m.ber_upper_bound());
        }
    }
}
