//! End-to-end checks of the BER-driven fault-injection subsystem: the
//! acceptance criteria of the fault PR, exercised through the public
//! crate surface only.
//!
//! - BER = 0 is bit-identical to a fault-free network (the whole
//!   injection path must be provably free when idle);
//! - raising the BER monotonically degrades delivery and inflates
//!   energy per delivered bit;
//! - sweeps are bit-identical at 1/2/8 worker threads;
//! - the library fault path never panics, even at absurd error rates.

use srlr_noc::traffic::Pattern;
use srlr_noc::{ber_sweep, FaultConfig, Network, NocConfig, PowerModel};
use srlr_repro::tech::Technology;

fn base_config() -> NocConfig {
    NocConfig::paper_default().with_size(4, 4)
}

#[test]
fn ber_zero_is_bit_identical_to_no_fault_model() {
    let run = |config: NocConfig| {
        let mut net = Network::new(config);
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.06, 300, 1200);
        (
            stats.packets_received,
            stats.latency_sum,
            stats.latency_max,
            stats.energy,
        )
    };
    let clean = run(base_config());
    let armed = run(base_config().with_ber(0.0));
    assert_eq!(
        clean, armed,
        "an installed fault model at BER 0 must cost nothing and change nothing"
    );
}

#[test]
fn delivery_degrades_and_energy_grows_monotonically_with_ber() {
    let tech = Technology::soi45();
    let model = PowerModel::paper_default(&tech);
    let config = base_config();
    let bers = [0.0, 1e-4, 2e-3, 2e-2];
    let points = ber_sweep(
        config,
        FaultConfig::new(0.0),
        Pattern::UniformRandom,
        0.06,
        300,
        1500,
        &bers,
        Some(1),
    );
    let delivered: Vec<f64> = points
        .iter()
        .map(|p| p.stats.delivered_fraction())
        .collect();
    let energy_per_bit: Vec<f64> = points
        .iter()
        .map(|p| {
            let bits =
                p.stats.packets_received as f64 * (config.packet_len * config.flit_bits) as f64;
            model.dynamic_energy(&p.stats.energy).joules() / bits
        })
        .collect();
    for w in delivered.windows(2) {
        assert!(
            w[1] <= w[0],
            "delivered fraction must not improve with BER: {delivered:?}"
        );
    }
    assert!(
        delivered[bers.len() - 1] < delivered[0],
        "the harshest BER must visibly lose packets: {delivered:?}"
    );
    for w in energy_per_bit.windows(2) {
        assert!(
            w[1] >= w[0],
            "energy per delivered bit must not shrink with BER: {energy_per_bit:?}"
        );
    }
    assert!(
        energy_per_bit[bers.len() - 1] > energy_per_bit[0],
        "retransmissions must cost real energy: {energy_per_bit:?}"
    );
}

#[test]
fn fault_sweep_is_bit_identical_across_thread_counts() {
    let sweep = |threads: usize| {
        ber_sweep(
            base_config(),
            FaultConfig::new(0.0).with_max_retries(3),
            Pattern::UniformRandom,
            0.05,
            200,
            800,
            &[0.0, 5e-4, 5e-3],
            Some(threads),
        )
    };
    let serial = sweep(1);
    for threads in [2, 8] {
        let parallel = sweep(threads);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.ber, b.ber);
            assert_eq!(
                a.stats, b.stats,
                "threads={threads} diverged at ber {}",
                a.ber
            );
        }
    }
}

#[test]
fn fault_counters_are_consistent_with_each_other() {
    let mut net = Network::new(base_config().with_ber(3e-3));
    let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.06, 300, 1500);
    let faults = &stats.faults;
    assert!(faults.flits_corrupted > 0, "3e-3 over 1500 cycles must hit");
    assert!(
        faults.flits_retransmitted <= faults.flits_corrupted + faults.retries_exhausted,
        "every retry is provoked by a detected corruption: {faults:?}"
    );
    assert!(
        stats.energy.retry_hops >= faults.flits_retransmitted,
        "each window retransmission is at least one charged retry hop"
    );
    assert!(
        stats.energy.nacks >= stats.energy.retry_hops,
        "every retry was requested by at least one NACK"
    );
    assert_eq!(
        stats.packets_dropped, faults.packets_dropped,
        "the network and the tally must agree on drops"
    );
}

#[test]
fn extreme_ber_drops_packets_without_panicking_or_wedging() {
    // BER high enough that retry budgets are routinely exhausted: the
    // library path must degrade to drops, never panic or deadlock.
    let mut net = Network::new(
        base_config().with_faults(FaultConfig::new(0.05).with_max_retries(2).with_timing(2, 1)),
    );
    let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.08, 200, 1200);
    assert!(stats.packets_dropped > 0, "5 % BER must exhaust retries");
    assert!(
        stats.delivered_fraction() < 1.0,
        "drops must show up in the delivered fraction"
    );
    assert!(net.drain(60_000), "faulty network failed to drain");
}

#[test]
fn run_until_delivered_reports_stall_instead_of_panicking() {
    use srlr_noc::{Coord, Packet, PacketId};
    let mut net = Network::new(base_config());
    net.enqueue(Packet::unicast(
        PacketId(1),
        Coord::new(0, 0),
        Coord::new(3, 3),
        5,
        0,
    ));
    let err = net
        .run_until_delivered(1, 2)
        .expect_err("two cycles cannot cross a 4x4 mesh");
    assert_eq!(err.cycles, 2);
    assert!(
        !err.in_flight.is_empty(),
        "the packet must be reported in flight"
    );
    let msg = err.to_string();
    assert!(msg.contains("stalled"), "{msg}");
    net.run_until_delivered(1, 10_000)
        .expect("the same packet arrives given time");
}
