//! Consistency checks between the two modeling levels (pulse-domain map
//! vs transistor-level transient) and between the link and NoC energy
//! models.

use srlr_core::transient::SrlrTransientFixture;
use srlr_link::SrlrLink;
use srlr_noc::{DatapathKind, PowerModel};
use srlr_repro::core::SrlrDesign;
use srlr_repro::tech::{GlobalVariation, Technology};
use srlr_units::{TimeInterval, Voltage};

#[test]
fn pulse_model_and_transient_agree_on_next_stage_swing() {
    // The pulse-domain map's delivered swing should sit within a factor
    // of the transistor-level simulation's measured far-end peak.
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let chain = design.instantiate(&tech, &GlobalVariation::nominal(), 2);
    let pulse_level = chain.propagate_trace(chain.nominal_input_pulse())[1]
        .swing
        .volts();

    let waves = SrlrTransientFixture::fig4(&tech);
    let transient = waves.next_input.peak().volts();
    let ratio = pulse_level / transient;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "pulse model {pulse_level} V vs transient {transient} V"
    );
}

#[test]
fn pulse_model_and_transient_agree_on_output_width() {
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let chain = design.instantiate(&tech, &GlobalVariation::nominal(), 1);
    let out = chain.stages()[0].process(chain.nominal_input_pulse());
    let pulse_width = out.output.width.picoseconds();

    let waves = SrlrTransientFixture::fig4(&tech);
    let widths = waves.output.pulse_widths(Voltage::from_volts(0.4));
    assert!(!widths.is_empty());
    let transient_width = widths[0].picoseconds();
    let ratio = pulse_width / transient_width;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "pulse model {pulse_width} ps vs transient {transient_width} ps"
    );
}

#[test]
fn transient_x_standby_matches_design_assumption() {
    // Both levels assume node X rests at VDD − Vth(lvt).
    let tech = Technology::soi45();
    let waves = SrlrTransientFixture::fig4(&tech);
    let standby = waves
        .node_x
        .value_at(TimeInterval::from_picoseconds(2.0))
        .volts();
    let expected = tech.vdd.volts() - (tech.nmos.vth0.volts() - 0.070);
    assert!(
        (standby - expected).abs() < 0.08,
        "standby {standby} vs expected {expected}"
    );
}

#[test]
fn transient_stage_survives_corners_like_the_pulse_model() {
    // The adaptive design works at every global corner in the pulse model
    // (tests/variation_robustness.rs); the transistor-level stage must
    // agree at least at the extreme same-direction corners.
    use srlr_repro::tech::ProcessCorner;
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    for corner in [ProcessCorner::SlowSlow, ProcessCorner::FastFast] {
        let var = corner.variation(&tech);
        let fixture = srlr_repro::core::transient::SrlrTransientFixture::build(
            &tech,
            &design,
            &var,
            &[true, false],
            TimeInterval::from_picoseconds(244.0),
        );
        let result = fixture.simulate_raw(TimeInterval::from_picoseconds(500.0));
        let out_peak = result.waveform(fixture.output).peak();
        assert!(
            out_peak.volts() > 0.6,
            "transient stage failed to fire at {corner}: OUT peak {out_peak}"
        );
    }
}

#[test]
fn noc_datapath_energy_comes_from_the_link_measurement() {
    // The PowerModel's fJ/bit/mm must be the same number the link crate
    // measures — one source of truth.
    let tech = Technology::soi45();
    let model = PowerModel::for_datapath(&tech, 64, DatapathKind::SrlrLowSwing);
    let link = SrlrLink::paper_test_chip(&tech).metrics();
    assert_eq!(model.datapath_energy, link.energy);
}

#[test]
fn noc_hop_energy_is_consistent_with_headline() {
    let tech = Technology::soi45();
    let model = PowerModel::paper_default(&tech);
    let per_bit_fj = model.hop_energy().femtojoules() / 64.0;
    let headline = SrlrLink::paper_test_chip(&tech)
        .metrics()
        .energy
        .femtojoules_per_bit_per_millimeter();
    // Hop = 2.5 mm of datapath.
    assert!(
        (per_bit_fj - headline * 2.5).abs() < 1e-6,
        "hop {per_bit_fj} fJ/bit vs 2.5 x {headline}"
    );
}

#[test]
fn sizing_explorer_confirms_the_paper_design_is_on_the_frontier() {
    use srlr_repro::core::sizing::SizingExplorer;
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let explorer = SizingExplorer::new(&tech, design.clone(), 10);
    let paper_point = explorer.evaluate(design.m1_width, design.m2_width);
    assert!(paper_point.is_viable(), "paper sizing must be viable");
    // A clearly undersized input device must not dominate it.
    let tiny = explorer.evaluate(srlr_units::Length::from_nanometers(40.0), design.m2_width);
    assert!(
        !tiny.is_viable() || tiny.energy.value() >= paper_point.energy.value(),
        "an undersized M1 should not beat the paper point"
    );
}
