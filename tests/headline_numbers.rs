//! End-to-end checks of the paper's headline numbers against the
//! simulated test chip (the EXPERIMENTS.md acceptance gates).

use srlr_link::ber::{max_data_rate, BerTester};
use srlr_link::{ComparisonTable, LinkConfig, SrlrLink};
use srlr_repro::core::SrlrDesign;
use srlr_repro::tech::{AdaptiveSwingBias, GlobalVariation, Technology};
use srlr_repro::units::DataRate;

#[test]
fn headline_bandwidth_density_matches_exactly() {
    // 4.1 Gb/s over a 0.6 um pitch is 6.83 Gb/s/um by construction.
    let tech = Technology::soi45();
    let m = SrlrLink::paper_test_chip(&tech).metrics();
    let bw = m.bandwidth_density.gigabits_per_second_per_micrometer();
    assert!((bw - 6.8333).abs() < 0.01, "bandwidth density {bw}");
}

#[test]
fn headline_energy_within_25_percent_of_paper() {
    let tech = Technology::soi45();
    let m = SrlrLink::paper_test_chip(&tech).metrics();
    let e = m.energy.femtojoules_per_bit_per_millimeter();
    assert!(
        (e - 40.4).abs() < 40.4 * 0.25,
        "energy {e} fJ/bit/mm vs paper 40.4"
    );
}

#[test]
fn headline_link_power_within_25_percent_of_paper() {
    let tech = Technology::soi45();
    let m = SrlrLink::paper_test_chip(&tech).metrics();
    let p = m.power.milliwatts();
    assert!((p - 1.66).abs() < 1.66 * 0.25, "power {p} mW vs paper 1.66");
}

#[test]
fn max_data_rate_in_the_paper_regime() {
    let tech = Technology::soi45();
    let rate = max_data_rate(
        &tech,
        &SrlrDesign::paper_proposed(&tech),
        LinkConfig::paper_default(),
        &GlobalVariation::nominal(),
        DataRate::from_gigabits_per_second(1.0),
        DataRate::from_gigabits_per_second(10.0),
        DataRate::from_gigabits_per_second(0.1),
    )
    .expect("nominal link works");
    let gbps = rate.gigabits_per_second();
    assert!(
        (4.1 * 0.7..=4.1 * 1.7).contains(&gbps),
        "max rate {gbps} Gb/s vs paper 4.1"
    );
}

#[test]
fn long_prbs_run_is_error_free() {
    let tech = Technology::soi45();
    let link = SrlrLink::paper_test_chip(&tech);
    let report = BerTester::prbs15().run(&link, 300_000);
    assert!(report.error_free(), "{report}");
    assert!(report.ber_upper_bound() < 2e-5);
}

#[test]
fn bias_power_share_is_sub_percent() {
    let tech = Technology::soi45();
    let m = SrlrLink::paper_test_chip(&tech).metrics();
    let bias = AdaptiveSwingBias::paper_default(&tech);
    let share = bias.power_fraction_of(m.power * 64.0);
    // Paper: 0.6 % for a 64-bit 10 mm link.
    assert!(share > 0.001 && share < 0.012, "bias share {share}");
}

#[test]
fn table1_preserves_the_papers_ordering() {
    let tech = Technology::soi45();
    let table = ComparisonTable::paper_table1(&tech);
    let measured = table.measured();
    for prior in &table.rows()[..5] {
        // We win on bandwidth density against every prior design...
        assert!(measured.bandwidth_density > prior.bandwidth_density);
        // ...and on energy against the repeated (mesh-compatible) ones.
        if prior.repeaters.contains("repeaters") {
            assert!(measured.energy < prior.energy, "vs {}", prior.label);
        }
    }
}

#[test]
fn published_and_measured_rows_agree_on_shape() {
    let tech = Technology::soi45();
    let table = ComparisonTable::paper_table1(&tech);
    let published = &table.rows()[5];
    let measured = table.measured();
    let ratio = measured.energy.value() / published.energy.value();
    assert!(
        (0.6..=1.4).contains(&ratio),
        "measured/published energy ratio {ratio}"
    );
}
