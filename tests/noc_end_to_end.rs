//! End-to-end NoC checks: traffic flows, power calibration, datapath
//! comparison, multicast savings.

use srlr_noc::traffic::Pattern;
use srlr_noc::{Coord, DatapathKind, Mesh, MulticastAccounting, Network, NocConfig, PowerModel};
use srlr_repro::tech::Technology;
use srlr_units::Frequency;

#[test]
fn paper_router_power_split_reproduced() {
    let tech = Technology::soi45();
    let model = PowerModel::paper_default(&tech);
    let cal = model.calibration_report(Frequency::from_gigahertz(1.0), 5);
    assert!((cal.buffers.milliwatts() - 38.8).abs() < 2.0, "{cal}");
    assert!((cal.control.milliwatts() - 5.2).abs() < 1.0, "{cal}");
    let dp = (cal.datapath + cal.bias).milliwatts();
    assert!((dp - 12.9).abs() < 2.5, "{cal}");
}

#[test]
fn srlr_datapath_cuts_noc_power_but_not_buffers() {
    let tech = Technology::soi45();
    let run = |datapath| {
        let config = NocConfig::paper_default()
            .with_size(4, 4)
            .with_datapath(datapath);
        let mut net = Network::new(config);
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.08, 300, 1200);
        let model = PowerModel::for_datapath(&tech, config.flit_bits, datapath);
        model.report(&stats.energy, 1200, config.clock, config.mesh().len())
    };
    let srlr = run(DatapathKind::SrlrLowSwing);
    let full = run(DatapathKind::FullSwingRepeated);
    assert!(
        srlr.datapath < full.datapath,
        "SRLR {} vs full-swing {}",
        srlr.datapath,
        full.datapath
    );
    // Same traffic, same seed: buffers identical.
    assert_eq!(srlr.buffers, full.buffers);
    assert!(srlr.total() < full.total());
}

#[test]
fn mesh_saturates_gracefully() {
    // Beyond saturation the accepted throughput plateaus instead of
    // collapsing, and latency keeps rising.
    let run = |rate: f64| {
        let mut net = Network::new(NocConfig::paper_default().with_size(4, 4));
        let s = net.run_warmup_and_measure(Pattern::UniformRandom, rate, 400, 1500);
        (s.throughput_flits_per_node_cycle(), s.avg_latency_cycles())
    };
    let (t_low, l_low) = run(0.03);
    let (t_mid, l_mid) = run(0.10);
    let (t_hot, l_hot) = run(0.40);
    assert!(t_mid > t_low);
    assert!(l_mid >= l_low * 0.8);
    assert!(l_hot > l_mid, "latency must blow up past saturation");
    assert!(t_hot >= t_mid * 0.6, "throughput must not collapse");
}

#[test]
fn transpose_and_uniform_both_complete() {
    for pattern in [
        Pattern::UniformRandom,
        Pattern::Transpose,
        Pattern::BitComplement,
    ] {
        let mut net = Network::new(NocConfig::paper_default().with_size(4, 4));
        let stats = net.run_warmup_and_measure(pattern, 0.04, 300, 1200);
        assert!(stats.packets_received > 20, "{pattern:?}: {stats}");
    }
}

#[test]
fn network_drains_after_load() {
    let mut net = Network::new(NocConfig::paper_default().with_size(4, 4));
    let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.10, 100, 400);
    assert!(net.drain(20_000), "network failed to drain");
}

#[test]
fn multicast_traffic_saves_datapath_hops() {
    let mut net = Network::new(NocConfig::paper_default().with_size(8, 8));
    let stats = net.run_warmup_and_measure(Pattern::Multicast { fanout: 4 }, 0.02, 300, 1500);
    assert!(stats.packets_received > 50);
    assert!(
        net.multicast_saved_hops() > 0,
        "fanout-4 multicast must share tree prefixes"
    );
    // Savings are bounded by what unicast clones would have paid.
    assert!(net.multicast_saved_hops() < net.counters().link_hops * 3);
}

#[test]
fn multicast_accounting_matches_simulated_pattern() {
    let mesh = Mesh::new(8, 8);
    let src = Coord::new(0, 0);
    let dsts = [Coord::new(7, 0), Coord::new(7, 7)];
    let acc = MulticastAccounting::new(mesh, src, &dsts);
    // Shared 7-hop run east, then 7 north: 14 tree hops vs 7 + 14 unicast.
    assert_eq!(acc.tree_hops(), 14);
    assert_eq!(acc.unicast_hops(), 21);
}

#[test]
fn power_scales_roughly_linearly_with_load_below_saturation() {
    let tech = Technology::soi45();
    let energy_at = |rate: f64| {
        let config = NocConfig::paper_default().with_size(4, 4);
        let mut net = Network::new(config);
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, rate, 300, 1500);
        let model = PowerModel::paper_default(&tech);
        model.dynamic_energy(&stats.energy).joules()
    };
    let e1 = energy_at(0.02);
    let e2 = energy_at(0.04);
    let ratio = e2 / e1;
    assert!(
        (1.5..=2.6).contains(&ratio),
        "dynamic energy should ~double with load: ratio {ratio}"
    );
}
